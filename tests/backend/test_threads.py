"""Thread-count determinism of the parallel kernel execution layer.

The contract (:mod:`repro.backend.threads`): chunk boundaries are a pure
function of the input *shape*, chunks write disjoint output slices or
produce partials reduced in chunk-index order, and kernels never draw
randomness.  Consequently the configured thread count may change which
thread computes a block but never a single output bit.  These tests
assert that literally — ``tobytes()`` equality across ``threads in
{1, 2, 4}`` for every threaded kernel family, RNG-stream equality, and a
tier-1 training smoke where params, ledger chain head and accountant
history replay bit-identically under 1 vs 4 threads.

Shapes are chosen to actually cross the blocking thresholds
(``fused._row_block`` / ``fused._batch_block``) so the chunked code path
— not the small-input fallthrough — is what runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend, use_backend, use_num_threads
from repro.backend.threads import MAX_THREADS, chunk_spans, run_chunks, set_num_threads
from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.perturbation import perturb_geodp_batch
from repro.geometry import canonicalize_angles
from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger

from tests.backend.conftest import parity_backends

pytestmark = [pytest.mark.backend, pytest.mark.threads]

#: Backends with a threaded execution layer (reference is serial by design).
THREADED_BACKENDS = [name for name in parity_backends() if name in ("fused", "cext")]

#: Thread counts of the determinism grid; 1 is the baseline.
THREAD_COUNTS = (1, 2, 4)

#: (m, d) past the 2^17-double blocking threshold: 12 chunks of 4 rows.
GEOM_SHAPE = (48, 4096)


def _bytes_at_threads(fn, n: int) -> tuple:
    """Run ``fn`` under ``n`` configured threads; return output bytes."""
    with use_num_threads(n):
        out = fn()
    if isinstance(out, tuple):
        return tuple(o.tobytes() for o in out if o is not None)
    return (out.tobytes(),)


def _assert_thread_invariant(fn, label: str):
    base = _bytes_at_threads(fn, THREAD_COUNTS[0])
    for n in THREAD_COUNTS[1:]:
        assert _bytes_at_threads(fn, n) == base, (
            f"{label}: output changed between 1 and {n} threads"
        )


@pytest.mark.parametrize("backend_name", THREADED_BACKENDS)
class TestKernelGrid:
    """Byte-equality grid: kernel family x backend x threads in {1, 2, 4}."""

    def test_spherical_decompose(self, backend_name):
        grads = np.random.default_rng(0).normal(size=GEOM_SHAPE)
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.spherical_decompose(grads), "spherical_decompose"
            )

    def test_spherical_compose(self, backend_name):
        rng = np.random.default_rng(1)
        mags = np.abs(rng.normal(size=GEOM_SHAPE[0])) + 0.1
        thetas = rng.uniform(0.0, np.pi, size=(GEOM_SHAPE[0], GEOM_SHAPE[1] - 1))
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.spherical_compose(mags, thetas), "spherical_compose"
            )

    def test_geodp_perturb(self, backend_name):
        rng = np.random.default_rng(2)
        clipped = rng.normal(size=GEOM_SHAPE) * 0.01
        mag_noise = rng.normal(size=GEOM_SHAPE[0]) * 0.1
        theta_noise = rng.normal(size=(GEOM_SHAPE[0], GEOM_SHAPE[1] - 1)) * 0.1
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.geodp_perturb(clipped, mag_noise, theta_noise),
                "geodp_perturb",
            )

    def test_canonicalize_angles(self, backend_name):
        noised = np.random.default_rng(3).normal(
            0.0, 4.0, size=(GEOM_SHAPE[0], GEOM_SHAPE[1] - 1)
        )
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.canonicalize_angles(noised), "canonicalize_angles"
            )

    def test_linear_ghost_norm_and_clip_accumulate(self, backend_name):
        # batch * (in + out) = 64 * 8448 doubles: blocked into 2 chunks.
        rng = np.random.default_rng(4)
        x = rng.normal(size=(64, 8192))
        grad_out = rng.normal(size=(64, 256))
        factors = rng.uniform(0.1, 1.0, size=64)
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.linear_norm_sq(x, grad_out, True), "linear_norm_sq"
            )
            _assert_thread_invariant(
                lambda: backend.linear_clip_accumulate(x, grad_out, factors, True),
                "linear_clip_accumulate",
            )

    def test_conv_clip_accumulate(self, backend_name):
        # batch * (K + O) * L = 32 * 96 * 256 doubles: blocked into 2 chunks.
        rng = np.random.default_rng(5)
        cols = rng.normal(size=(32, 64, 256))
        dy = rng.normal(size=(32, 32, 256))
        factors = rng.uniform(0.1, 1.0, size=32)
        with use_backend(backend_name):
            backend = get_backend()
            _assert_thread_invariant(
                lambda: backend.conv_clip_accumulate(cols, dy, factors, True),
                "conv_clip_accumulate",
            )


@pytest.mark.parametrize("backend_name", THREADED_BACKENDS)
def test_public_perturbation_rng_stream_and_output(backend_name):
    """Thread count changes neither the noise stream nor the release bytes."""
    grads = np.random.default_rng(6).normal(size=GEOM_SHAPE) * 0.01
    results = {}
    for n in THREAD_COUNTS:
        rng = np.random.default_rng(123)
        with use_backend(backend_name), use_num_threads(n):
            out = perturb_geodp_batch(grads, 1.0, 0.8, 32, 0.2, rng)
        results[n] = (out.tobytes(), rng.bit_generator.state)
    base_bytes, base_state = results[1]
    for n in THREAD_COUNTS[1:]:
        assert results[n][0] == base_bytes, f"release bytes changed at {n} threads"
        assert results[n][1] == base_state, f"RNG stream changed at {n} threads"


@pytest.mark.parametrize("backend_name", THREADED_BACKENDS)
def test_public_canonicalize_entry_point(backend_name):
    """The geometry-module wrapper dispatches through the threaded kernel."""
    noised = np.random.default_rng(7).normal(
        0.0, 4.0, size=(GEOM_SHAPE[0], GEOM_SHAPE[1] - 1)
    )
    with use_backend(backend_name):
        _assert_thread_invariant(
            lambda: canonicalize_angles(noised), "canonicalize_angles (public)"
        )


def _train_release_run(optimizer_cls, num_threads, **extra):
    """Tiny DP run: 4 steps of clipped-sum + release with full accounting."""
    data_rng = np.random.default_rng(11)
    grads_per_step = [data_rng.normal(size=(8, 30)) for _ in range(4)]
    accountant = RdpAccountant()
    ledger = ReleaseLedger(delta=1e-5)
    with use_backend("auto"), use_num_threads(num_threads):
        opt = optimizer_cls(
            learning_rate=0.1,
            clipping=1.0,
            noise_multiplier=1.1,
            rng=np.random.default_rng(2024),
            accountant=accountant,
            sample_rate=0.01,
            ledger=ledger,
            **extra,
        )
        params = np.zeros(30)
        for grads in grads_per_step:
            params = opt.step(params, grads)
    return params, accountant, ledger


@pytest.mark.parametrize(
    "optimizer_cls,extra",
    [(DpSgdOptimizer, {}), (GeoDpSgdOptimizer, {"beta": 0.2})],
    ids=["dpsgd", "geodp"],
)
def test_training_run_bit_identical_across_thread_counts(optimizer_cls, extra):
    """Tier-1 smoke: a DP training loop cannot see the thread count.

    4 steps under 1 vs 4 configured threads must produce bit-identical
    parameters, an identical hash-chained ledger head, and an identical
    accountant history.
    """
    base_params, base_acct, base_ledger = _train_release_run(optimizer_cls, 1, **extra)
    verify_ledger(base_ledger, accountant=base_acct)
    params, acct, ledger = _train_release_run(optimizer_cls, 4, **extra)
    verify_ledger(ledger, accountant=acct)
    assert params.tobytes() == base_params.tobytes()
    assert len(ledger.entries) == len(base_ledger.entries) == 4
    assert ledger.head == base_ledger.head, "ledger diverged across thread counts"
    assert acct.history == base_acct.history


class TestThreadApi:
    def test_chunk_spans_cover_and_partition(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert chunk_spans(0, 4) == []
        assert chunk_spans(5, 100) == [(0, 5)]
        # Boundaries are shape-derived: identical whatever the thread count.
        for n in THREAD_COUNTS:
            with use_num_threads(n):
                assert chunk_spans(10, 3) == spans

    def test_run_chunks_executes_every_span_once(self):
        for n in (1, 4):
            hits = []
            with use_num_threads(n):
                run_chunks(lambda start, stop: hits.append((start, stop)), chunk_spans(7, 2))
            assert sorted(hits) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_run_chunks_propagates_exceptions(self):
        def boom(start, stop):
            raise RuntimeError("chunk failed")

        for n in (1, 4):
            with use_num_threads(n), pytest.raises(RuntimeError, match="chunk failed"):
                run_chunks(boom, chunk_spans(8, 2))

    def test_set_num_threads_validates_and_clamps(self):
        with pytest.raises(ValueError):
            set_num_threads(0)
        with use_num_threads(1):
            assert set_num_threads(MAX_THREADS + 10) == MAX_THREADS

    def test_use_num_threads_restores_previous(self):
        with use_num_threads(1):
            with use_num_threads(3) as n:
                assert n == 3
            from repro.backend import get_num_threads

            assert get_num_threads() == 1
