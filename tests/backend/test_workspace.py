"""Behavioral tests of the reusable-workspace buffer arena.

The arena's contract (:mod:`repro.backend.workspace`): ``take`` hands out
pooled buffers keyed by ``(shape, dtype)`` and transfers ownership,
``give`` donates them back, the pool is bounded, and counters track
hits/misses/pooled bytes.  The payoff — a near-zero-allocation
steady-state release — is asserted directly with ``tracemalloc`` against
the same ceiling ``benchmarks/compare.gate_threads`` enforces.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.backend import use_backend, workspace

pytestmark = pytest.mark.backend


@pytest.fixture(autouse=True)
def _clean_arena():
    """Each test starts from an empty pool and zeroed counters."""
    workspace.invalidate()
    workspace.reset_stats()
    yield
    workspace.invalidate()
    workspace.reset_stats()


class TestTakeGive:
    def test_take_miss_then_hit_returns_same_buffer(self):
        first = workspace.take((4, 8))
        assert first.shape == (4, 8) and first.dtype == np.float64
        workspace.give(first)
        second = workspace.take((4, 8))
        assert second is first
        stats = workspace.stats()
        assert stats["workspace_hits"] == 1
        assert stats["workspace_misses"] == 1

    def test_keys_separate_shapes_and_dtypes(self):
        a = workspace.take((4, 8))
        workspace.give(a)
        assert workspace.take((8, 4)) is not a  # different shape, same size
        b = workspace.take((4, 8), dtype=np.float32)
        assert b.dtype == np.float32 and b is not a

    def test_give_tracks_pooled_bytes(self):
        buf = workspace.take(1000)
        workspace.give(buf)
        assert workspace.stats()["workspace_bytes"] == buf.nbytes
        workspace.take(1000)
        assert workspace.stats()["workspace_bytes"] == 0

    def test_per_key_cap_drops_excess_buffers(self):
        buffers = [workspace.take(16) for _ in range(workspace.MAX_BUFFERS_PER_KEY + 3)]
        for buf in buffers:
            workspace.give(buf)
        pooled = workspace.stats()["workspace_bytes"]
        assert pooled == workspace.MAX_BUFFERS_PER_KEY * buffers[0].nbytes

    def test_scratch_returns_buffer_to_pool(self):
        with workspace.scratch((3, 3)) as buf:
            buf.fill(7.0)
        again = workspace.take((3, 3))
        assert again is buf  # returned to the pool on exit

    def test_zeros_is_zero_filled(self):
        buf = workspace.take(5)
        buf.fill(9.0)
        workspace.give(buf)
        assert np.all(workspace.zeros(5) == 0.0)

    def test_invalidate_empties_pool(self):
        workspace.give(workspace.take((2, 2)))
        workspace.invalidate()
        stats = workspace.stats()
        assert stats["workspace_bytes"] == 0 and stats["workspace_keys"] == 0

    def test_reset_stats_keeps_pool(self):
        workspace.give(workspace.take(8))
        workspace.reset_stats()
        stats = workspace.stats()
        assert stats["workspace_hits"] == stats["workspace_misses"] == 0
        assert stats["workspace_bytes"] > 0


class TestNoteReleaseShape:
    def test_same_shape_keeps_pool(self):
        class Owner:
            pass

        owner = Owner()
        workspace.note_release_shape(owner, (10,))
        workspace.give(workspace.take((10,)))
        workspace.note_release_shape(owner, (10,))
        assert workspace.stats()["workspace_bytes"] > 0

    def test_shape_change_invalidates_pool(self):
        class Owner:
            pass

        owner = Owner()
        workspace.note_release_shape(owner, (10,))
        workspace.give(workspace.take((10,)))
        workspace.note_release_shape(owner, (20,))
        assert workspace.stats()["workspace_bytes"] == 0

    def test_owners_are_independent(self):
        class Owner:
            pass

        a, b = Owner(), Owner()
        workspace.note_release_shape(a, (10,))
        workspace.note_release_shape(b, (20,))
        workspace.give(workspace.take((10,)))
        # b re-announcing its own (unchanged) shape must not flush a's pool.
        workspace.note_release_shape(b, (20,))
        assert workspace.stats()["workspace_bytes"] > 0


def test_steady_state_release_allocation_is_bounded():
    """An arena-warm GeoDP release allocates far less than the pre-arena 23 MB.

    Mirrors ``benchmarks/compare.gate_threads``: after two warm-up calls
    populate every ``(shape, dtype)`` key, the tracemalloc peak of one
    more release must sit under the gate's ceiling (pre-arena peak / 5).
    The only steady-state allocation left is the output buffer the caller
    keeps.
    """
    from repro.core.perturbation import perturb_geodp_batch

    grads = np.random.default_rng(0).normal(size=(64, 5000)) * 0.01

    def release():
        return perturb_geodp_batch(grads, 0.1, 1.0, 1024, 0.1, np.random.default_rng(7))

    with use_backend("auto"):
        release()
        release()
        tracemalloc.start()
        release()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    assert peak <= 23_041_638 // 5, (
        f"steady-state release peak {peak} bytes; arena should keep it "
        f"under {23_041_638 // 5}"
    )
