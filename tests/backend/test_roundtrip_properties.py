"""Property-based round-trip tests for the spherical conversions.

Seeded fuzz over dimensions 1-512 plus adversarial geometries (near-pole,
zero-norm, antipodal, extreme dynamic range): for every backend,
``to_cartesian_batch(to_spherical_batch(g))`` must reconstruct ``g`` to
1e-9, and the decomposition must satisfy its range invariants (polar
angles in [0, pi], azimuth in (-pi, pi], magnitude = ||g||).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import use_backend
from repro.geometry.spherical import to_cartesian_batch, to_spherical_batch

from tests.backend.conftest import ALWAYS_AVAILABLE, parity_backends

pytestmark = pytest.mark.backend

BACKENDS = list(ALWAYS_AVAILABLE) + [
    name for name in parity_backends() if name not in ALWAYS_AVAILABLE
]

RECONSTRUCTION_TOL = 1e-9

#: Seeded fuzz grid: (dimension, rows, seed).  Dimensions sweep the range
#: 2-512 (d=1 is rejected, asserted separately) including primes, powers
#: of two and the row-blocking threshold neighborhood of the fused backend.
FUZZ_CASES = [
    (2, 64, 0),
    (3, 33, 1),
    (5, 17, 2),
    (16, 50, 3),
    (31, 12, 4),
    (64, 40, 5),
    (127, 9, 6),
    (256, 8, 7),
    (511, 5, 8),
    (512, 6, 9),
]


def _roundtrip_max_err(grads):
    mags, thetas = to_spherical_batch(grads)
    back = to_cartesian_batch(mags, thetas)
    return float(np.max(np.abs(back - grads)))


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("d,m,seed", FUZZ_CASES)
def test_fuzz_roundtrip(backend_name, d, m, seed):
    rng = np.random.default_rng(seed)
    # Mix of scales: unit-ish, tiny, huge rows in one batch.
    grads = rng.normal(size=(m, d))
    grads[:: 3] *= 1e-6
    grads[1:: 3] *= 1e6
    with use_backend(backend_name):
        assert _roundtrip_max_err(grads) <= RECONSTRUCTION_TOL * max(
            1.0, float(np.max(np.abs(grads)))
        )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("d,m,seed", FUZZ_CASES)
def test_decomposition_invariants(backend_name, d, m, seed):
    grads = np.random.default_rng(seed + 1000).normal(size=(m, d))
    with use_backend(backend_name):
        mags, thetas = to_spherical_batch(grads)
    np.testing.assert_allclose(mags, np.linalg.norm(grads, axis=1), rtol=1e-12)
    assert thetas.shape == (m, d - 1)
    if d > 2:  # leading d-2 angles are polar: arctan2 of a non-negative norm
        assert np.all(thetas[:, : d - 2] >= 0.0)
        assert np.all(thetas[:, : d - 2] <= np.pi)
    assert np.all(thetas[:, -1] > -np.pi) and np.all(thetas[:, -1] <= np.pi)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_adversarial_geometries_roundtrip(backend_name):
    d = 6
    eps = 1e-15
    rows = [
        np.zeros(d),                                   # zero norm
        np.r_[1.0, np.zeros(d - 1)],                   # exactly on the pole
        np.r_[-1.0, np.zeros(d - 1)],                  # antipodal pole
        np.r_[1.0, eps * np.ones(d - 1)],              # near-pole
        np.r_[-1.0, -eps * np.ones(d - 1)],            # near-antipodal
        np.r_[np.zeros(d - 1), 1.0],                   # all weight on azimuth
        np.r_[np.zeros(d - 1), -1.0],                  # negative azimuth branch
        np.r_[np.zeros(d - 2), -1.0, 0.0],             # azimuth exactly pi
        np.full(d, 1e-300),                            # denormal-adjacent
    ]
    grads = np.stack(rows)
    with use_backend(backend_name):
        assert _roundtrip_max_err(grads) <= RECONSTRUCTION_TOL


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_dimension_one_rejected(backend_name):
    with use_backend(backend_name):
        with pytest.raises(ValueError):
            to_spherical_batch(np.ones((3, 1)))


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_blocking_threshold_continuity(backend_name):
    """Batches straddling the fused backend's blocking threshold agree."""
    d = 257
    m = (1 << 17) // d + 2  # rows put m*d just above the no-blocking cutoff
    grads = np.random.default_rng(42).normal(size=(m, d))
    with use_backend("reference"):
        ref_mags, ref_thetas = to_spherical_batch(grads)
    with use_backend(backend_name):
        mags, thetas = to_spherical_batch(grads)
    np.testing.assert_allclose(mags, ref_mags, rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(thetas, ref_thetas, rtol=1e-10, atol=1e-10)
