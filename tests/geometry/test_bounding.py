"""Tests for the bounding-factor privacy region (paper §V-B step 2, Lemma 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    bound_angles,
    delta_prime_upper_bound,
    direction_sensitivity,
    per_angle_sensitivity,
)


class TestDirectionSensitivity:
    def test_closed_form(self):
        # Delta theta = sqrt(d+2) * beta * pi
        assert direction_sensitivity(100, 0.5) == pytest.approx(
            np.sqrt(102) * 0.5 * np.pi
        )

    def test_matches_per_angle_l2(self):
        for d in (2, 3, 10, 1000):
            per = per_angle_sensitivity(d, 0.3)
            assert np.linalg.norm(per) == pytest.approx(direction_sensitivity(d, 0.3))

    def test_beta_one_is_full_space(self):
        per = per_angle_sensitivity(5, 1.0)
        assert np.allclose(per[:-1], np.pi)
        assert per[-1] == pytest.approx(2 * np.pi)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 10000), st.floats(1e-6, 1.0))
    def test_monotone_in_beta_and_d(self, d, beta):
        s = direction_sensitivity(d, beta)
        assert s > 0
        assert direction_sensitivity(d + 1, beta) > s
        if beta < 0.5:
            assert direction_sensitivity(d, beta * 2) == pytest.approx(2 * s)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            direction_sensitivity(1, 0.5)
        with pytest.raises(ValueError):
            direction_sensitivity(10, 0.0)
        with pytest.raises(ValueError):
            direction_sensitivity(10, 1.5)


class TestPerAngleSensitivity:
    def test_length(self):
        assert per_angle_sensitivity(7, 0.2).shape == (6,)

    def test_azimuth_double(self):
        per = per_angle_sensitivity(4, 0.25)
        assert per[-1] == pytest.approx(2 * per[0])


class TestBoundAngles:
    def test_beta_one_noop_on_canonical(self, rng):
        thetas = np.column_stack(
            [rng.uniform(0, np.pi, size=(6, 3)), rng.uniform(-np.pi, np.pi, size=(6, 1))]
        )
        assert np.allclose(bound_angles(thetas, 1.0), thetas)

    def test_clamps_polar_into_centre_band(self):
        thetas = np.array([[0.0, 0.0], [np.pi, 0.0]])
        out = bound_angles(thetas, 0.5)
        assert out[0, 0] == pytest.approx(np.pi / 4)
        assert out[1, 0] == pytest.approx(3 * np.pi / 4)

    def test_clamps_azimuth(self):
        thetas = np.array([[np.pi / 2, 3.0]])
        out = bound_angles(thetas, 0.5)
        assert out[0, 1] == pytest.approx(0.5 * np.pi)

    def test_bounded_range_matches_sensitivity(self, rng):
        beta = 0.3
        thetas = rng.normal(size=(200, 5)) * 10
        out = bound_angles(thetas, beta)
        spread = out.max(axis=0) - out.min(axis=0)
        per = per_angle_sensitivity(6, beta)
        assert np.all(spread <= per + 1e-12)


class TestDeltaPrime:
    def test_beta_one_gives_zero(self):
        assert delta_prime_upper_bound(1.0) == 0.0

    def test_formula(self):
        assert delta_prime_upper_bound(0.25) == pytest.approx(0.75)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1e-6, 1.0))
    def test_in_unit_interval(self, beta):
        assert 0.0 <= delta_prime_upper_bound(beta) < 1.0
