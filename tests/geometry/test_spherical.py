"""Tests for hyper-spherical coordinate conversions (paper Eq. 24-27)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    canonicalize_angles,
    to_cartesian,
    to_cartesian_batch,
    to_spherical,
    to_spherical_batch,
)


class TestToSpherical:
    def test_2d_known_angle(self):
        # Example 1 of the paper: g = (1, sqrt(3)) has theta = pi/3, |g| = 2.
        r, theta = to_spherical([1.0, np.sqrt(3.0)])
        assert r == pytest.approx(2.0)
        assert theta[0] == pytest.approx(np.pi / 3)

    def test_3d_axis_vectors(self):
        r, theta = to_spherical([1.0, 0.0, 0.0])
        assert r == pytest.approx(1.0)
        assert theta[0] == pytest.approx(0.0)

        r, theta = to_spherical([0.0, 0.0, 1.0])
        assert r == pytest.approx(1.0)
        assert theta[0] == pytest.approx(np.pi / 2)
        assert theta[1] == pytest.approx(np.pi / 2)

    def test_negative_first_coordinate_gives_obtuse_polar(self):
        _, theta = to_spherical([-1.0, 1.0, 0.5])
        assert np.pi / 2 < theta[0] <= np.pi

    def test_last_angle_full_range(self):
        _, theta = to_spherical([0.0, 1.0, -1.0])
        assert theta[-1] == pytest.approx(-np.pi / 4)

    def test_magnitude_matches_norm(self, gradient_batch):
        r, _ = to_spherical_batch(gradient_batch)
        assert np.allclose(r, np.linalg.norm(gradient_batch, axis=1))

    def test_angle_ranges(self, gradient_batch):
        _, theta = to_spherical_batch(gradient_batch)
        assert np.all(theta[:, :-1] >= 0)
        assert np.all(theta[:, :-1] <= np.pi)
        assert np.all(theta[:, -1] >= -np.pi)
        assert np.all(theta[:, -1] <= np.pi)

    def test_rejects_1d_vector_dimension(self):
        with pytest.raises(ValueError, match="dimension >= 2"):
            to_spherical_batch(np.ones((3, 1)))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            to_spherical_batch(np.ones((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            to_spherical_batch(np.array([[1.0, np.nan]]))

    def test_zero_vector_round_trips_to_zero(self):
        r, theta = to_spherical([0.0, 0.0, 0.0])
        assert r == 0.0
        back = to_cartesian(r, theta)
        assert np.allclose(back, 0.0)


class TestToCartesian:
    def test_2d_inverse(self):
        g = to_cartesian(2.0, [np.pi / 3])
        assert np.allclose(g, [1.0, np.sqrt(3.0)])

    def test_unit_magnitude_gives_unit_vector(self, rng):
        theta = np.concatenate([rng.uniform(0, np.pi, 8), rng.uniform(-np.pi, np.pi, 1)])
        g = to_cartesian(1.0, theta)
        assert np.linalg.norm(g) == pytest.approx(1.0)

    def test_negative_magnitude_flips_vector(self):
        theta = [np.pi / 4, 0.3]
        assert np.allclose(to_cartesian(-1.5, theta), -to_cartesian(1.5, theta))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="incompatible"):
            to_cartesian_batch(np.ones(3), np.ones((2, 4)))


class TestRoundTrip:
    def test_round_trip_batch(self, gradient_batch):
        r, theta = to_spherical_batch(gradient_batch)
        back = to_cartesian_batch(r, theta)
        assert np.allclose(back, gradient_batch, atol=1e-10)

    @settings(max_examples=60, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(2, 40)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_round_trip_property(self, grads):
        r, theta = to_spherical_batch(grads)
        back = to_cartesian_batch(r, theta)
        assert np.allclose(back, grads, atol=1e-8 * (1 + np.abs(grads).max()))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 50), st.integers(0, 2**32 - 1))
    def test_spherical_of_cartesian_recovers_angles(self, dim, seed):
        rng = np.random.default_rng(seed)
        theta = np.concatenate(
            [
                rng.uniform(0.05, np.pi - 0.05, dim - 2),
                rng.uniform(-np.pi + 0.05, np.pi - 0.05, 1),
            ]
        )
        magnitude = float(rng.uniform(0.1, 10.0))
        g = to_cartesian(magnitude, theta)
        r2, theta2 = to_spherical(g)
        assert r2 == pytest.approx(magnitude, rel=1e-9)
        # Angles match except when a degenerate sine product collapses the
        # later angles; with angles bounded away from {0, pi} this is safe.
        assert np.allclose(theta2, theta, atol=1e-7)


class TestCanonicalize:
    def test_identity_on_canonical(self, gradient_batch):
        _, theta = to_spherical_batch(gradient_batch)
        assert np.allclose(canonicalize_angles(theta), theta)

    def test_reflects_negative_polar(self):
        out = canonicalize_angles(np.array([[-0.3, 0.0]]))
        assert out[0, 0] == pytest.approx(0.3)

    def test_folds_above_pi(self):
        out = canonicalize_angles(np.array([[np.pi + 0.2, 0.0]]))
        assert out[0, 0] == pytest.approx(np.pi - 0.2)

    def test_wraps_azimuth(self):
        out = canonicalize_angles(np.array([[0.5, np.pi + 0.1]]))
        assert out[0, 1] == pytest.approx(-np.pi + 0.1)

    def test_canonical_angles_represent_same_vector(self, rng):
        theta = rng.normal(size=(12, 7)) * 3
        canon = canonicalize_angles(theta)
        for row, crow in zip(theta, canon):
            g1 = to_cartesian(1.0, row)
            g2 = to_cartesian(1.0, crow)
            assert np.abs(g1 - g2).max() < 1e-9

    def test_canonical_ranges(self, rng):
        theta = rng.normal(size=(20, 5)) * 10
        canon = canonicalize_angles(theta)
        assert np.all(canon[:, :-1] >= 0) and np.all(canon[:, :-1] <= np.pi)
        assert np.all(canon[:, -1] > -np.pi) and np.all(canon[:, -1] <= np.pi)

    def test_idempotent(self, rng):
        theta = rng.normal(size=(10, 6)) * 5
        once = canonicalize_angles(theta)
        twice = canonicalize_angles(once)
        assert np.allclose(once, twice)


class TestCanonicalizeDimensionality:
    def test_1d_input_returns_1d(self):
        theta = np.array([-0.3, 0.0])
        out = canonicalize_angles(theta)
        assert out.shape == theta.shape
        assert out[0] == pytest.approx(0.3)

    def test_1d_matches_row_of_2d_batch(self, rng):
        theta = rng.normal(size=6) * 3
        single = canonicalize_angles(theta)
        batched = canonicalize_angles(theta[None, :])
        assert batched.shape == (1, 6)
        assert np.array_equal(single, batched[0])

    def test_rejects_other_ranks(self):
        with pytest.raises(ValueError):
            canonicalize_angles(np.zeros((2, 3, 4)))
        with pytest.raises(ValueError):
            canonicalize_angles(np.array(0.5))


class TestCanonicalizeVectorized:
    """The cumsum-parity formulation must match the sequential fold."""

    @staticmethod
    def reference_loop(thetas):
        """Sequential reference: fold angles one at a time, carrying the
        pending-negation flag explicitly (the pre-vectorization algorithm)."""
        thetas = np.asarray(thetas, dtype=np.float64)
        out = np.empty_like(thetas)
        d_minus_1 = thetas.shape[1]
        negate = np.zeros(thetas.shape[0], dtype=bool)
        for z in range(d_minus_1 - 1):
            t = thetas[:, z].copy()
            t[negate] = np.pi - t[negate]
            t = np.mod(t, 2 * np.pi)
            above = t > np.pi
            t[above] = 2 * np.pi - t[above]
            negate ^= above
            out[:, z] = t
        last = thetas[:, -1].copy()
        last[negate] += np.pi
        last = np.mod(last + np.pi, 2 * np.pi) - np.pi
        last[last == -np.pi] = np.pi
        out[:, -1] = last
        return out

    @pytest.mark.parametrize("d", [2, 3, 5, 50, 200])
    def test_matches_reference_loop(self, d):
        rng = np.random.default_rng(17)
        thetas = rng.normal(0.0, 4.0, size=(64, d - 1))
        assert np.allclose(
            canonicalize_angles(thetas), self.reference_loop(thetas), atol=1e-10
        )

    @pytest.mark.parametrize("d", [3, 5, 40])
    def test_preserves_vector(self, d):
        rng = np.random.default_rng(18)
        thetas = rng.normal(0.0, 4.0, size=(32, d - 1))
        mags = np.abs(rng.normal(1.0, 0.2, size=32))
        before = to_cartesian_batch(mags, thetas)
        after = to_cartesian_batch(mags, canonicalize_angles(thetas))
        assert np.allclose(before, after, atol=1e-9)
