"""Tests for sphere sampling."""

import numpy as np
import pytest

from repro.geometry.sampling import sample_uniform_sphere, sample_von_mises_fisher


class TestUniformSphere:
    def test_unit_norm(self, rng):
        x = sample_uniform_sphere(100, 10, rng)
        assert np.allclose(np.linalg.norm(x, axis=1), 1.0)

    def test_zero_mean(self):
        x = sample_uniform_sphere(50_000, 5, rng=0)
        assert np.allclose(x.mean(axis=0), 0.0, atol=0.02)

    def test_coordinate_variance(self):
        """Each coordinate of a uniform unit vector has variance 1/d."""
        d = 8
        x = sample_uniform_sphere(50_000, d, rng=0)
        assert np.allclose(x.var(axis=0), 1.0 / d, atol=0.01)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_uniform_sphere(0, 5)
        with pytest.raises(ValueError):
            sample_uniform_sphere(5, 1)


class TestVonMisesFisher:
    def test_unit_norm(self, rng):
        mu = np.ones(6)
        x = sample_von_mises_fisher(200, mu, 10.0, rng)
        assert np.allclose(np.linalg.norm(x, axis=1), 1.0)

    def test_concentrates_around_mu(self, rng):
        mu = np.zeros(10)
        mu[3] = 1.0
        x = sample_von_mises_fisher(2000, mu, 100.0, rng)
        cosines = x @ mu
        assert cosines.mean() > 0.9

    def test_kappa_controls_concentration(self, rng):
        mu = np.ones(8) / np.sqrt(8)
        tight = sample_von_mises_fisher(2000, mu, 200.0, rng) @ mu
        loose = sample_von_mises_fisher(2000, mu, 1.0, rng) @ mu
        assert tight.mean() > loose.mean()
        assert tight.std() < loose.std()

    def test_small_kappa_near_uniform(self, rng):
        mu = np.zeros(5)
        mu[0] = 1.0
        x = sample_von_mises_fisher(30_000, mu, 1e-3, rng)
        assert abs((x @ mu).mean()) < 0.02

    def test_mean_cosine_matches_theory_3d(self):
        """In 3-D, E[<x, mu>] = coth(kappa) - 1/kappa."""
        kappa = 5.0
        mu = np.array([0.0, 0.0, 1.0])
        x = sample_von_mises_fisher(100_000, mu, kappa, rng=0)
        expected = 1.0 / np.tanh(kappa) - 1.0 / kappa
        assert (x @ mu).mean() == pytest.approx(expected, abs=0.005)

    def test_2d_case(self, rng):
        mu = np.array([1.0, 0.0])
        x = sample_von_mises_fisher(500, mu, 50.0, rng)
        assert np.allclose(np.linalg.norm(x, axis=1), 1.0)
        assert (x @ mu).mean() > 0.9

    def test_mu_normalised_internally(self, rng):
        a = sample_von_mises_fisher(100, [3.0, 0.0, 0.0], 50.0, rng=7)
        b = sample_von_mises_fisher(100, [1.0, 0.0, 0.0], 50.0, rng=7)
        assert np.allclose(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_von_mises_fisher(0, [1.0, 0.0], 1.0)
        with pytest.raises(ValueError, match="nonzero"):
            sample_von_mises_fisher(5, [0.0, 0.0], 1.0)
        with pytest.raises(ValueError):
            sample_von_mises_fisher(5, [1.0, 0.0], 0.0)
