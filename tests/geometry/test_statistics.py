"""Tests for directional statistics."""

import numpy as np
import pytest

from repro.geometry.sampling import sample_uniform_sphere, sample_von_mises_fisher
from repro.geometry.statistics import (
    circular_mean,
    circular_variance,
    estimate_vmf_kappa,
    mean_direction,
    resultant_length,
)


class TestMeanDirection:
    def test_aligned_vectors(self):
        v = np.array([[2.0, 0.0], [5.0, 0.0]])
        assert np.allclose(mean_direction(v), [1.0, 0.0])

    def test_unit_output(self, rng):
        v = rng.normal(size=(20, 6)) + 3.0
        assert np.linalg.norm(mean_direction(v)) == pytest.approx(1.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError, match="zero vectors"):
            mean_direction(np.array([[0.0, 0.0]]))

    def test_cancelling_rejected(self):
        with pytest.raises(ValueError, match="cancel"):
            mean_direction(np.array([[1.0, 0.0], [-1.0, 0.0]]))


class TestResultantLength:
    def test_perfectly_aligned(self):
        v = np.tile([1.0, 2.0], (5, 1))
        assert resultant_length(v) == pytest.approx(1.0)

    def test_uniform_near_zero(self):
        v = sample_uniform_sphere(20_000, 4, rng=0)
        assert resultant_length(v) < 0.05

    def test_monotone_in_concentration(self, rng):
        mu = np.ones(6) / np.sqrt(6)
        tight = sample_von_mises_fisher(2000, mu, 100.0, rng)
        loose = sample_von_mises_fisher(2000, mu, 2.0, rng)
        assert resultant_length(tight) > resultant_length(loose)


class TestKappaEstimation:
    def test_recovers_true_kappa(self):
        mu = np.zeros(8)
        mu[0] = 1.0
        for kappa in (5.0, 50.0):
            samples = sample_von_mises_fisher(40_000, mu, kappa, rng=0)
            estimate = estimate_vmf_kappa(samples)
            assert estimate == pytest.approx(kappa, rel=0.1)

    def test_aligned_gives_inf(self):
        v = np.tile([0.0, 1.0], (10, 1))
        assert estimate_vmf_kappa(v) == float("inf")

    def test_uniform_gives_small_kappa(self):
        samples = sample_uniform_sphere(20_000, 6, rng=0)
        assert estimate_vmf_kappa(samples) < 0.5


class TestCircularStats:
    def test_mean_respects_wraparound(self):
        angles = [np.pi - 0.1, -np.pi + 0.1]
        mean = circular_mean(angles)
        assert abs(abs(mean) - np.pi) < 1e-9

    def test_mean_of_identical(self):
        assert circular_mean([0.7, 0.7, 0.7]) == pytest.approx(0.7)

    def test_variance_bounds(self, rng):
        assert circular_variance([1.0, 1.0]) == pytest.approx(0.0, abs=1e-12)
        spread = rng.uniform(-np.pi, np.pi, 50_000)
        assert circular_variance(spread) > 0.95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            circular_mean([])
        with pytest.raises(ValueError):
            circular_variance([])
