"""Tests for direction/gradient error metrics (Definition 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    angle_between,
    angular_errors,
    cosine_similarity,
    direction_mse,
    gradient_mse,
)


class TestDirectionMse:
    def test_zero_for_identical(self, rng):
        theta = rng.uniform(0, np.pi, size=(10, 5))
        assert direction_mse(theta, theta) == 0.0

    def test_known_value(self):
        true = np.array([[0.0, 0.0]])
        pert = np.array([[0.3, 0.4]])
        assert direction_mse(pert, true) == pytest.approx(0.25)

    def test_mean_over_rows(self):
        true = np.zeros((2, 2))
        pert = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert direction_mse(pert, true) == pytest.approx(0.5)

    def test_wraparound_last_angle(self):
        true = np.array([[0.5, np.pi - 0.01]])
        pert = np.array([[0.5, -np.pi + 0.01]])
        assert direction_mse(pert, true) == pytest.approx(0.02**2, rel=1e-6)

    def test_no_wrap_option(self):
        true = np.array([[0.5, np.pi - 0.01]])
        pert = np.array([[0.5, -np.pi + 0.01]])
        big = direction_mse(pert, true, wrap_last=False)
        assert big == pytest.approx((2 * np.pi - 0.02) ** 2, rel=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            direction_mse(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_single_vector_inputs(self):
        assert direction_mse([0.1, 0.2], [0.1, 0.2]) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.integers(2, 10), st.integers(0, 10**6))
    def test_nonnegative(self, m, d, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, d))
        b = rng.normal(size=(m, d))
        assert direction_mse(a, b) >= 0


class TestGradientMse:
    def test_zero_for_identical(self, gradient_batch):
        assert gradient_mse(gradient_batch, gradient_batch) == 0.0

    def test_known_value(self):
        assert gradient_mse([[1.0, 2.0]], [[0.0, 0.0]]) == pytest.approx(5.0)

    def test_symmetry(self, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(5, 4))
        assert gradient_mse(a, b) == pytest.approx(gradient_mse(b, a))


class TestCosineSimilarity:
    def test_parallel(self):
        assert cosine_similarity([[1.0, 1.0]], [[2.0, 2.0]])[0] == pytest.approx(1.0)

    def test_antiparallel(self):
        assert cosine_similarity([[1.0, 0.0]], [[-3.0, 0.0]])[0] == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity([[1.0, 0.0]], [[0.0, 5.0]])[0] == pytest.approx(0.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity([[0.0, 0.0]], [[1.0, 1.0]])[0] == 0.0

    def test_bounded(self, rng):
        a = rng.normal(size=(50, 10)) * 1e8
        b = rng.normal(size=(50, 10)) * 1e-8
        sims = cosine_similarity(a, b)
        assert np.all(sims >= -1.0) and np.all(sims <= 1.0)


class TestAngleBetween:
    def test_right_angle(self):
        assert angle_between([[1.0, 0.0]], [[0.0, 1.0]])[0] == pytest.approx(np.pi / 2)

    def test_range(self, rng):
        a = rng.normal(size=(30, 6))
        b = rng.normal(size=(30, 6))
        angles = angle_between(a, b)
        assert np.all(angles >= 0) and np.all(angles <= np.pi)


class TestAngularErrors:
    def test_summary_keys_and_consistency(self, rng):
        a = rng.normal(size=(20, 8))
        b = a + 0.01 * rng.normal(size=(20, 8))
        summary = angular_errors(a, b)
        assert set(summary) == {"mean", "median", "max"}
        assert summary["mean"] <= summary["max"]
        assert summary["max"] < 0.2
