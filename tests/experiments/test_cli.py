"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import (
    EXPERIMENTS,
    build_parser,
    main,
    run_one,
    supports_workers,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.scale == "smoke"
        assert args.seed == 0

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--scale", "giant"])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fig1(self, capsys):
        assert main(["fig1", "--scale", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "completed in" in out

    def test_run_one_returns_table(self):
        text = run_one("fig4", "smoke", 0)
        assert "Figure 4" in text

    def test_workers_support_detection(self):
        assert supports_workers("table2")
        assert supports_workers("table3")
        assert not supports_workers("fig1")

    def test_workers_notice_on_unsupported_experiment(self):
        text = run_one("fig4", "smoke", 0, workers=2)
        assert "does not support --workers" in text
        assert "Figure 4" in text  # the experiment still ran

    def test_invalid_workers_rejected(self, capsys):
        assert main(["table2", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig3", "fig4", "fig5", "fig6", "table2", "table3",
            "theory", "frontier", "mia", "concentration", "trace", "sparse",
        }
