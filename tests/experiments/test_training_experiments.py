"""Contract tests for the heavy (training-based) experiment runners.

The full smoke presets run in the benchmark suite; here we inject micro
presets so each runner's *contract* (structure of the returned dict, table
formatting, parameter plumbing) is exercised in seconds.
"""

import numpy as np
import pytest

from repro.experiments import fig5, mia, privacy_utility, table2, table3
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.mia import format_mia, run_mia
from repro.experiments.privacy_utility import format_privacy_utility, run_privacy_utility
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture
def micro_presets(monkeypatch):
    """Shrink every training experiment's smoke preset to seconds."""
    monkeypatch.setitem(
        fig5._PRESETS,
        "smoke",
        {
            "n": 120, "size": 16, "iters": 4,
            "batches_a": (16, 32), "batch_c": 16, "betas_b": (0.1, 0.035),
            "lr": 2.0,
        },
    )
    monkeypatch.setitem(
        table2._PRESETS,
        "smoke",
        {
            "n": 120, "size": 16, "channels": (2, 2), "batches": (8, 16),
            "iters": 3, "sigmas": (10.0, 1.0), "lr": 2.0,
        },
    )
    monkeypatch.setitem(
        table3._PRESETS,
        "smoke",
        {
            "n": 100, "size": 16, "base_channels": 2, "batches": (8, 16),
            "iters": 3, "sigmas": (0.1, 0.01), "lr": 1.0,
        },
    )
    monkeypatch.setitem(
        privacy_utility._PRESETS,
        "smoke",
        {
            "n": 120, "size": 16, "batch": 16, "iters": 5, "lr": 2.0,
            "beta": 0.05, "epsilons": (1.0, 8.0),
        },
    )
    monkeypatch.setitem(
        mia._PRESETS,
        "smoke",
        {"n": 80, "size": 16, "iters": 20, "sigma": 5.0, "lr": 2.0},
    )


class TestFig5Contract:
    def test_structure(self, micro_presets):
        result = run_fig5("smoke", rng=0)
        assert set(result["panels"]) == {"a", "b", "c"}
        for curves in result["panels"].values():
            for curve in curves.values():
                assert len(curve) == 4
        assert "clipped-sgd" in result["panels"]["b"]
        text = format_fig5(result)
        assert "Figure 5(a)" in text and "Figure 5(c)" in text


class TestTableContracts:
    def test_table2(self, micro_presets):
        result = run_table2("smoke", rng=0)
        assert len(result["rows"]) == 15
        assert result["sigmas"] == (10.0, 1.0)
        assert 0.0 <= result["noise_free"] <= 1.0
        text = format_table2(result)
        assert "Table II" in text and "GeoDP+SUR+PSAC" in text

    def test_table3(self, micro_presets):
        result = run_table3("smoke", rng=0)
        assert len(result["rows"]) == 15
        labels = [r["label"] for r in result["rows"]]
        assert any("beta=1.0" in l for l in labels)  # Table III's bad beta
        assert "Table III" in format_table3(result)


class TestExtensionContracts:
    def test_privacy_utility(self, micro_presets):
        result = run_privacy_utility("smoke", rng=0)
        assert [r["epsilon"] for r in result["rows"]] == [1.0, 8.0]
        # Calibration: bigger budget, less noise.
        assert result["rows"][0]["sigma"] > result["rows"][1]["sigma"]
        assert "frontier" in format_privacy_utility(result)

    def test_mia(self, micro_presets):
        result = run_mia("smoke", rng=0)
        labels = [r["label"] for r in result["rows"]]
        assert len(labels) == 3
        for row in result["rows"]:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert 0.0 <= row["advantage"] <= 1.0
        assert "Membership inference" in format_mia(result)

    def test_invalid_scale_rejected(self):
        for runner in (run_fig5, run_table2, run_table3, run_privacy_utility, run_mia):
            with pytest.raises(ValueError):
                runner("gigantic")
