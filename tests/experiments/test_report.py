"""`repro report` subcommand tests, ending in the acceptance check: a full
CLI trace run exports a ledger that replay-verifies to 1e-9."""

import json

import pytest

from repro.experiments.cli import main, run_report
from repro.privacy import RdpAccountant, ReleaseLedger, verify_ledger
from repro.telemetry import (
    MetricsRecorder,
    Tracer,
    build_report,
    export_trace,
    load_run_bundles,
    render_report,
)


def _export_bundle(path):
    recorder = MetricsRecorder()
    tracer = Tracer()
    ledger = ReleaseLedger()
    accountant = RdpAccountant()
    with tracer.span("run", level="run"):
        for i in range(3):
            recorder.start_step(i)
            with tracer.span("lot", level="lot"):
                with tracer.span("clip"):
                    pass
            recorder.record("clipped_fraction", 0.5)
            accountant.step(1.0, 0.1)
            ledger.record_release(
                mechanism="gaussian", sigma=1.0, sensitivity=0.1,
                sample_rate=0.1, accountant=accountant,
            )
            recorder.end_step()
    export_trace(path, recorder, run="demo", tracer=tracer, ledger=ledger)


class TestReportRendering:
    def test_markdown_report(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_bundle(path)
        text = run_report(str(path))
        assert "# Run report" in text and "## Run `demo`" in text
        assert "verification **PASS**" in text
        assert "| clip |" in text and "clipped_fraction" in text

    def test_json_report_is_parseable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_bundle(path)
        payload = json.loads(run_report(str(path), fmt="json"))
        run = payload["runs"]["demo"]
        assert run["ledger"]["verified"] is True
        assert run["ledger"]["entries"] == 3
        assert run["tracing"]["spans"] == 7
        assert "clip" in run["tracing"]["phase_seconds"]

    def test_chrome_side_output(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_bundle(path)
        chrome = tmp_path / "t.trace.json"
        run_report(str(path), chrome=str(chrome))
        parsed = json.loads(chrome.read_text())
        assert {e["ph"] for e in parsed["traceEvents"]} == {"X", "M"}

    def test_recorder_only_trace_still_reports(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.record("loss", 1.0)
        path = tmp_path / "plain.jsonl"
        export_trace(path, recorder, run="plain")
        report = build_report(load_run_bundles(path))
        assert report["runs"]["plain"]["tracing"] is None
        assert report["runs"]["plain"]["ledger"] is None
        assert "# Run report" in render_report(report)

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="fmt"):
            render_report({"runs": {}}, fmt="yaml")


class TestCliPlumbing:
    def test_report_requires_path(self, capsys):
        assert main(["report"]) == 2
        assert "trace file" in capsys.readouterr().err

    def test_trace_path_rejected_for_experiments(self, capsys):
        assert main(["fig1", "some.jsonl"]) == 2
        assert "report" in capsys.readouterr().err

    def test_report_subcommand_prints(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _export_bundle(path)
        assert main(["report", str(path)]) == 0
        assert "# Run report" in capsys.readouterr().out


@pytest.mark.slow
class TestFullCliRun:
    def test_trace_export_report_and_ledger_verify_to_1e9(self, tmp_path, capsys):
        """Acceptance: full CLI run -> exported trace -> ledger replay at 1e-9."""
        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.trace.json"
        assert main(["trace", "--scale", "smoke", "--telemetry", str(trace)]) == 0
        assert "privacy ledger" in capsys.readouterr().out

        bundles = load_run_bundles(trace)
        assert sorted(bundles) == ["dpsgd", "geodp"]
        for run, bundle in bundles.items():
            assert bundle.ledger is not None and len(bundle.ledger.entries) == 60
            verification = verify_ledger(bundle.ledger, tol=1e-9)
            assert verification.ok, f"{run}: {verification}"
            assert bundle.tracer is not None
            assert bundle.tracer.phase_totals(level="phase")["clip"] > 0

        assert main(["report", str(trace), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert out.count("verification **PASS**") == 2
        parsed = json.loads(chrome.read_text())
        spans = len(bundles["dpsgd"].tracer.spans) + len(bundles["geodp"].tracer.spans)
        complete = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == spans
