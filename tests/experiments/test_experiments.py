"""Tests for the experiment harness (smoke scale) and its qualitative shapes."""

import numpy as np
import pytest

from repro.experiments import (
    format_fig1,
    format_fig3,
    format_fig4,
    format_fig6,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig6,
)
from repro.experiments.common import check_scale, mse_comparison
from repro.experiments.fig4 import crossover_beta
from repro.experiments.training_grid import MethodSpec, standard_method_grid


class TestCommon:
    def test_check_scale(self):
        assert check_scale("smoke") == "smoke"
        with pytest.raises(ValueError):
            check_scale("huge")

    def test_mse_comparison_keys(self, rng):
        grads = rng.normal(size=(10, 20))
        out = mse_comparison(grads, 0.1, 1.0, 512, 0.1, rng)
        assert set(out) == {"dp_theta", "geo_theta", "dp_g", "geo_g"}
        assert all(v >= 0 for v in out.values())

    def test_repeats_reduce_variance(self, rng):
        grads = rng.normal(size=(10, 20))
        single = [
            mse_comparison(grads, 0.1, 1.0, 512, 0.1, np.random.default_rng(s))["geo_theta"]
            for s in range(12)
        ]
        averaged = [
            mse_comparison(
                grads, 0.1, 1.0, 512, 0.1, np.random.default_rng(s), repeats=8
            )["geo_theta"]
            for s in range(12)
        ]
        assert np.std(averaged) < np.std(single)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1("smoke", rng=0)

    def test_row_structure(self, result):
        assert len(result["rows"]) == 4
        assert all("sigma" in r for r in result["rows"])

    def test_mse_grows_with_sigma(self, result):
        geo = [r["geo_theta"] for r in result["rows"]]
        assert geo == sorted(geo)

    def test_headline_shape(self, result):
        """GeoDP better on directions, DP better on raw gradients (Fig 1)."""
        for row in result["rows"]:
            assert row["geo_theta"] < row["dp_theta"]
            assert row["dp_g"] < row["geo_g"]

    def test_format(self, result):
        text = format_fig1(result)
        assert "Figure 1" in text and "GeoDP MSE(theta)" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3("smoke", rng=0)

    def test_panels_present(self, result):
        assert set(result["panels"]) == {"sigma", "dim", "batch"}

    def test_geo_direction_mse_scales_with_beta(self, result):
        rows = result["panels"]["sigma"]["rows"]
        at_sigma = {}
        for r in rows:
            at_sigma.setdefault(r["x"], {})[r["beta"]] = r["geo_theta"]
        for sigma, per_beta in at_sigma.items():
            assert per_beta[0.01] < per_beta[0.1] < per_beta[1.0]

    def test_batch_size_helps_geodp(self, result):
        rows = [r for r in result["panels"]["batch"]["rows"] if r["beta"] == 0.1]
        series = sorted(rows, key=lambda r: r["x"])
        assert series[-1]["geo_theta"] < series[0]["geo_theta"]

    def test_small_beta_wins_both(self, result):
        """Fig 3 c/f/i: beta = 0.01 gives GeoDP the double win everywhere."""
        for panel in result["panels"].values():
            for r in panel["rows"]:
                if r["beta"] == 0.01:
                    assert r["geo_theta"] < r["dp_theta"]

    def test_format(self, result):
        text = format_fig3(result)
        assert "Figure 3 (a-c)" in text and "(g-i)" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4("smoke", rng=0)

    def test_crossover_exists(self, result):
        """Lemma 1: some beta gives GeoDP the double win at every d."""
        for dim in result["dims"]:
            assert crossover_beta(result, dim) is not None

    def test_crossover_shrinks_with_dimension(self, result):
        dims = sorted(result["dims"])
        betas = [crossover_beta(result, d) for d in dims]
        assert betas[-1] <= betas[0]

    def test_format(self, result):
        text = format_fig4(result)
        assert "double-win beta" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6("smoke", rng=0)

    def test_rows(self, result):
        assert len(result["rows"]) == 4
        assert all(r["dp_seconds"] > 0 for r in result["rows"])

    def test_geodp_not_faster(self, result):
        """GeoDP pays for the conversions: never meaningfully faster than DP."""
        for r in result["rows"]:
            assert r["geodp_seconds"] > 0.5 * r["dp_seconds"]

    def test_dimension_increases_runtime(self, result):
        by_dim = {}
        for r in result["rows"]:
            by_dim.setdefault(r["dim"], []).append(r["geodp_seconds"])
        dims = sorted(by_dim)
        assert np.mean(by_dim[dims[-1]]) > np.mean(by_dim[dims[0]])

    def test_format(self, result):
        assert "GeoDP/DP" in format_fig6(result)


class TestTrainingGrid:
    def test_standard_grid_has_15_rows(self):
        grid = standard_method_grid(64, 128, 0.1, 0.5)
        assert len(grid) == 15
        labels = [m.label for m in grid]
        assert len(set(labels)) == 15

    def test_method_spec_validation(self):
        with pytest.raises(ValueError, match="beta"):
            MethodSpec("x", "geodp", 32)
        with pytest.raises(ValueError, match="scheme"):
            MethodSpec("x", "foo", 32)
        with pytest.raises(ValueError, match="clipping"):
            MethodSpec("x", "dp", 32, clipping="weird")
