"""Tests for the parameter-sweep harness."""

import numpy as np
import pytest

from repro.experiments.sweep import ParameterSweep


def toy_measure(a, b, rng):
    return {"sum": a + b, "noisy": a * b + rng.normal(0, 0.01)}


class TestPoints:
    def test_cartesian_product(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [10, 20, 30]})
        points = sweep.points()
        assert len(points) == 6
        assert {"a": 2, "b": 30} in points

    def test_deterministic_order(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [3, 4]})
        assert sweep.points() == sweep.points()

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterSweep(toy_measure, {})
        with pytest.raises(ValueError):
            ParameterSweep(toy_measure, {"a": []})


class TestRun:
    def test_metrics_attached_to_points(self):
        sweep = ParameterSweep(toy_measure, {"a": [1], "b": [2]})
        rows = sweep.run(rng=0)
        assert rows[0]["sum"] == 3
        assert rows[0]["a"] == 1

    def test_repeats_average_noise(self):
        sweep = ParameterSweep(toy_measure, {"a": [3], "b": [4]})
        noisy_once = [sweep.run(rng=s)[0]["noisy"] for s in range(10)]
        noisy_avg = [sweep.run(rng=s, repeats=40)[0]["noisy"] for s in range(10)]
        assert np.std(noisy_avg) < np.std(noisy_once)

    def test_deterministic_given_seed(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [3]})
        assert sweep.run(rng=7) == sweep.run(rng=7)

    def test_bad_measure_rejected(self):
        sweep = ParameterSweep(lambda a, rng: 42, {"a": [1]})
        with pytest.raises(ValueError, match="dict"):
            sweep.run(rng=0)

    def test_invalid_repeats(self):
        sweep = ParameterSweep(toy_measure, {"a": [1], "b": [2]})
        with pytest.raises(ValueError):
            sweep.run(rng=0, repeats=0)


class TestStd:
    def test_known_values(self):
        """repeats spread known samples -> exact population std."""
        samples = {"x": iter([1.0, 3.0])}

        def measure(a, rng):
            return {"x": next(samples["x"])}

        sweep = ParameterSweep(measure, {"a": [0]})
        [row] = sweep.run(rng=0, repeats=2)
        assert row["x"] == 2.0  # mean of 1, 3
        assert row["x_std"] == 1.0  # population std of 1, 3

    def test_zero_at_single_repeat(self):
        sweep = ParameterSweep(toy_measure, {"a": [1], "b": [2]})
        [row] = sweep.run(rng=0)
        assert row["sum_std"] == 0.0
        assert row["noisy_std"] == 0.0

    def test_std_name_collision_rejected(self):
        sweep = ParameterSweep(
            lambda a, rng: {"x": a, "x_std": 0.0}, {"a": [1]}
        )
        with pytest.raises(ValueError, match="x_std"):
            sweep.run(rng=0)

    def test_workers_param_accepted_serially(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [3]})
        assert sweep.run(rng=7, repeats=2, workers=1) == sweep.run(
            rng=7, repeats=2
        )


class TestFormat:
    def test_two_param_grid_layout(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [10, 20]})
        rows = sweep.run(rng=0)
        text = sweep.format(rows, metric="sum", title="sums")
        assert "a \\ b" in text
        assert "sums" in text
        # grid cell (a=2, b=20) -> 22
        assert "22" in text

    def test_flat_layout_for_other_arity(self):
        sweep = ParameterSweep(lambda a, rng: {"x": a}, {"a": [1, 2, 3]})
        rows = sweep.run(rng=0)
        text = sweep.format(rows, metric="x")
        assert text.count("\n") >= 4

    def test_unknown_metric(self):
        sweep = ParameterSweep(toy_measure, {"a": [1], "b": [2]})
        rows = sweep.run(rng=0)
        with pytest.raises(KeyError):
            sweep.format(rows, metric="nope")

    def test_std_rendering(self):
        sweep = ParameterSweep(toy_measure, {"a": [1, 2], "b": [10, 20]})
        rows = sweep.run(rng=0, repeats=2)
        text = sweep.format(rows, metric="sum", std=True)
        assert "22±0" in text  # sum is noise-free: zero spread

    def test_std_requires_std_column(self):
        sweep = ParameterSweep(toy_measure, {"a": [1], "b": [2]})
        rows = [{k: v for k, v in r.items() if not k.endswith("_std")}
                for r in sweep.run(rng=0)]
        with pytest.raises(KeyError, match="sum_std"):
            sweep.format(rows, metric="sum", std=True)


class TestGeoDpGridUseCase:
    def test_beta_sigma_grid(self):
        """The harness drives a real GeoDP beta x sigma MSE grid."""
        from repro.data import synthetic_gradient_batch
        from repro.experiments.common import mse_comparison

        grads = synthetic_gradient_batch(20, 100, rng=0)

        def measure(beta, sigma, rng):
            out = mse_comparison(grads, 0.1, sigma, 1024, beta, rng)
            return {"geo_theta": out["geo_theta"], "dp_theta": out["dp_theta"]}

        sweep = ParameterSweep(measure, {"beta": [0.01, 0.1], "sigma": [0.1, 1.0]})
        rows = sweep.run(rng=0, repeats=2)
        assert len(rows) == 4
        by = {(r["beta"], r["sigma"]): r["geo_theta"] for r in rows}
        assert by[(0.01, 0.1)] < by[(0.1, 0.1)]  # monotone in beta
        assert by[(0.01, 0.1)] < by[(0.01, 1.0)]  # monotone in sigma
