"""Package-level quality tests: API surface, docstrings, conventions."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.geometry",
    "repro.privacy",
    "repro.nn",
    "repro.models",
    "repro.data",
    "repro.attacks",
    "repro.experiments",
    "repro.utils",
]


def _walk_modules():
    out = []
    for name in PACKAGES:
        pkg = importlib.import_module(name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=name + "."):
            out.append(importlib.import_module(info.name))
    return out


ALL_MODULES = _walk_modules()


class TestApiSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_top_level_exposes_the_headline_api(self):
        for symbol in (
            "GeoDpSgdOptimizer",
            "DpSgdOptimizer",
            "Trainer",
            "RdpAccountant",
            "perturb_geodp",
        ):
            assert hasattr(repro, symbol)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_every_module_has_a_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if callable(obj) and not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
        assert not undocumented, f"{name}: undocumented public API {undocumented}"

    def test_public_classes_document_public_methods(self):
        from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer, Trainer
        from repro.privacy import RdpAccountant

        for cls in (DpSgdOptimizer, GeoDpSgdOptimizer, Trainer, RdpAccountant):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestConventions:
    def test_optimizers_declare_per_sample_requirement(self):
        from repro.core import (
            AdamOptimizer,
            DpAdamOptimizer,
            DpSgdOptimizer,
            GeoDpAdamOptimizer,
            GeoDpSgdOptimizer,
            SgdOptimizer,
        )

        assert DpSgdOptimizer(0.1, 1.0, 1.0).requires_per_sample
        assert GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.5).requires_per_sample
        assert DpAdamOptimizer(0.1, 1.0, 1.0).requires_per_sample
        assert GeoDpAdamOptimizer(0.1, 1.0, 1.0, beta=0.5).requires_per_sample
        assert not SgdOptimizer(0.1).requires_per_sample
        assert not AdamOptimizer(0.1).requires_per_sample

    def test_stochastic_components_accept_rng_seed(self):
        """Every stochastic public entry point must be seedable for reproducibility."""
        import numpy as np

        from repro.core import perturb_dp, perturb_geodp
        from repro.data import make_cifar_like, make_mnist_like, make_text_like

        g = np.ones(5)
        assert np.allclose(
            perturb_dp(g, 1.0, 1.0, 4, rng=1), perturb_dp(g, 1.0, 1.0, 4, rng=1)
        )
        assert np.allclose(
            perturb_geodp(g, 1.0, 1.0, 4, 0.5, rng=1),
            perturb_geodp(g, 1.0, 1.0, 4, 0.5, rng=1),
        )
        for maker in (make_mnist_like, make_cifar_like, make_text_like):
            a = maker(12, rng=5)
            b = maker(12, rng=5)
            assert np.allclose(a.x, b.x)
