"""Concurrent submissions racing for the last budget slice.

Every test derives the expected admitted count from a *serial* greedy
probe: because each job in a batch is identical, the tenant accountant's
state after ``j`` admissions is bit-identical regardless of thread
interleaving, so the number of affordable jobs is deterministic — the
race can only change who wins, never how many win.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.privacy.accountant import RdpAccountant
from repro.service import BudgetServer, JobSpec, replay_accountant

pytestmark = pytest.mark.service


def exact_budget_for(sigma, sample_rate, steps, jobs, *, delta=1e-5):
    """Exact cumulative ε after ``jobs`` identical admissions.

    Used as a tenant budget: the ``jobs``-th admission lands exactly on
    the budget (float-equal, same operations in the same order), the next
    one strictly exceeds it.
    """
    probe = RdpAccountant()
    for _ in range(jobs):
        probe.step(sigma, sample_rate, num_steps=steps)
    return probe.get_epsilon(delta)


def submit_racing(server, spec, *, threads, per_thread):
    """Fire ``threads`` barrier-synchronized submitters; return decisions."""
    barrier = threading.Barrier(threads)
    decisions = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            _, decision = server.submit(spec)
            with lock:
                decisions.append(decision)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return decisions


@pytest.mark.parametrize("seed", range(20))
def test_exactly_affordable_count_admitted(seed):
    rng = np.random.default_rng(seed)
    sigma = float(rng.uniform(0.8, 1.5))
    sample_rate = float(rng.uniform(0.01, 0.05))
    steps = int(rng.integers(50, 200))
    threads = int(rng.integers(4, 9))
    per_thread = 2
    total = threads * per_thread
    affordable = int(rng.integers(1, total))
    budget = exact_budget_for(sigma, sample_rate, steps, affordable)

    server = BudgetServer()  # in-memory: admission only, no dispatch
    server.add_tenant("alice", epsilon_budget=budget)
    spec = JobSpec(tenant="alice", sigma=sigma, sample_rate=sample_rate, steps=steps)
    decisions = submit_racing(server, spec, threads=threads, per_thread=per_thread)

    assert len(decisions) == total
    assert sum(d.admitted for d in decisions) == affordable
    assert sum(d.outcome == "refused" for d in decisions) == total - affordable

    tenant = server.registry.get("alice")
    # The last admission lands float-exactly on the budget; never over.
    assert tenant.spent_epsilon() == budget
    # Every decision is chained: spends + refusal annotations.
    assert len(tenant.ledger.entries) == total
    spends = [r for r in tenant.ledger.entries if not r.is_annotation]
    assert len(spends) == affordable
    verification = tenant.verify(tol=1e-9)
    assert verification.ok, str(verification)
    replayed = replay_accountant(tenant.ledger)
    assert np.array_equal(replayed.rdp_curve(), tenant.accountant.rdp_curve())


def test_single_slice_single_winner():
    """16 threads race for a budget that fits exactly one job."""
    budget = exact_budget_for(1.0, 0.02, 100, 1)
    server = BudgetServer()
    server.add_tenant("alice", epsilon_budget=budget)
    spec = JobSpec(tenant="alice", sigma=1.0, sample_rate=0.02, steps=100)
    decisions = submit_racing(server, spec, threads=16, per_thread=1)
    assert sum(d.admitted for d in decisions) == 1
    tenant = server.registry.get("alice")
    assert tenant.spent_epsilon() == budget
    assert tenant.verify(tol=1e-9).ok


def test_tenants_race_independently():
    """Concurrent load on one tenant never leaks spend into another."""
    budget_a = exact_budget_for(1.0, 0.02, 100, 3)
    budget_b = exact_budget_for(1.3, 0.01, 80, 2)
    server = BudgetServer()
    server.add_tenant("alice", epsilon_budget=budget_a)
    server.add_tenant("bob", epsilon_budget=budget_b)
    spec_a = JobSpec(tenant="alice", sigma=1.0, sample_rate=0.02, steps=100)
    spec_b = JobSpec(tenant="bob", sigma=1.3, sample_rate=0.01, steps=80)

    barrier = threading.Barrier(8)

    def worker(spec):
        barrier.wait()
        for _ in range(2):
            server.submit(spec)

    pool = [
        threading.Thread(target=worker, args=(spec_a if i % 2 == 0 else spec_b,))
        for i in range(8)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    alice = server.registry.get("alice")
    bob = server.registry.get("bob")
    assert alice.spent_epsilon() == budget_a  # 3 of 8 alice jobs fit
    assert bob.spent_epsilon() == budget_b  # 2 of 8 bob jobs fit
    assert all(r.namespace == "alice" for r in alice.ledger.entries)
    assert all(r.namespace == "bob" for r in bob.ledger.entries)
    assert alice.verify(tol=1e-9).ok
    assert bob.verify(tol=1e-9).ok
    counts = server.queue.counts()
    assert counts["admitted"] == 5 and counts["refused"] == 11
