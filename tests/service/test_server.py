"""Server-loop behaviour: fair share, drain, spool, failures, reports, CLI."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.service import (
    BudgetServer,
    JobQueue,
    JobRecord,
    JobSpec,
    build_budget_report,
    write_submission,
)
from repro.telemetry.report import render_budget_report

pytestmark = pytest.mark.service


def spec(tenant, *, seed=0, work_ms=0.0, steps=100):
    return JobSpec(
        tenant=tenant, sigma=1.1, sample_rate=0.01, steps=steps, dim=8,
        seed=seed, work_ms=work_ms,
    )


class TestFairShare:
    @staticmethod
    def admitted(job_id, tenant, seq):
        return JobRecord(
            job_id=job_id, spec=spec(tenant), status="admitted", submit_seq=seq
        )

    def test_next_batch_interleaves_tenants(self):
        queue = JobQueue()
        for i in range(6):
            queue.add(self.admitted(f"a{i}", "alice", queue.next_seq()))
        for i in range(2):
            queue.add(self.admitted(f"b{i}", "bob", queue.next_seq()))
        batch = queue.next_batch(4, {"alice": 0, "bob": 0})
        # alice flooded first, but bob is interleaved 1:1 by dispatch deficit.
        assert [r.job_id for r in batch] == ["a0", "b0", "a1", "b1"]

    def test_next_batch_respects_existing_deficit(self):
        queue = JobQueue()
        queue.add(self.admitted("a0", "alice", queue.next_seq()))
        queue.add(self.admitted("b0", "bob", queue.next_seq()))
        # alice already dispatched 5 jobs; bob none — bob goes first.
        batch = queue.next_batch(2, {"alice": 5, "bob": 0})
        assert [r.job_id for r in batch] == ["b0", "a0"]

    def test_dispatch_order_on_server(self):
        executed = []

        def runner(job):
            executed.append(job.key)
            return {}

        server = BudgetServer(batch_size=8, runner=runner)
        server.add_tenant("alice", epsilon_budget=50.0)
        server.add_tenant("bob", epsilon_budget=50.0)
        for i in range(3):
            server.submit(spec("alice"), job_id=f"a{i}")
        server.submit(spec("bob"), job_id="b0")
        server.run_until_idle()
        assert executed == ["a0", "b0", "a1", "a2"]
        assert server.registry.get("alice").dispatch_count == 3
        assert server.registry.get("bob").dispatch_count == 1


class TestDispatch:
    def test_runner_failure_marks_failed_and_keeps_spend(self):
        def boom(job):
            raise RuntimeError("boom")

        server = BudgetServer(runner=boom)
        server.add_tenant("alice", epsilon_budget=10.0)
        record, _ = server.submit(spec("alice"))
        spent = server.registry.get("alice").spent_epsilon()
        server.run_until_idle()
        record = server.queue.get(record.job_id)
        assert record.status == "failed"
        assert record.result["ok"] is False and "boom" in record.result["error"]
        # The authorized release stays accounted — failure never refunds ε.
        assert server.registry.get("alice").spent_epsilon() == spent
        assert server.verify()["alice"].ok

    def test_default_runner_ships_job_telemetry(self):
        server = BudgetServer(workers=2, batch_size=4)
        server.add_tenant("alice", epsilon_budget=50.0)
        for i in range(4):
            server.submit(spec("alice", seed=i))
        server.run_until_idle()
        done = server.queue.by_status("done")
        assert len(done) == 4
        for record in done:
            assert record.result["ok"] is True
            assert record.result["steps_simulated"] >= 1
        counters = server.telemetry.state_dict()["counters"]
        assert counters["service_release_draws"] > 0
        assert counters["service_jobs_completed"] == 4


class TestSpool:
    def test_ingest_consumes_and_is_idempotent(self, tmp_path):
        server = BudgetServer(tmp_path / "svc")
        server.add_tenant("alice", epsilon_budget=10.0)
        path = write_submission(server.store.spool_dir, spec("alice"))
        job_id = path.name[: -len(".job.json")]
        assert server.ingest_spool() == 1
        assert not path.exists()
        entries = len(server.registry.get("alice").ledger.entries)
        # Crash replay: the admission was snapshotted but the spool file
        # survived — re-ingesting the same job id must not spend twice.
        write_submission(server.store.spool_dir, spec("alice"), job_id=job_id)
        assert server.ingest_spool() == 0
        assert server.store.pending_submissions() == []
        assert len(server.registry.get("alice").ledger.entries) == entries

    def test_unknown_tenant_stays_spooled(self, tmp_path):
        server = BudgetServer(tmp_path / "svc")
        write_submission(server.store.spool_dir, spec("carol"))
        assert server.ingest_spool() == 0
        assert len(server.store.pending_submissions()) == 1  # not dropped
        server.add_tenant("carol", epsilon_budget=10.0)
        assert server.ingest_spool() == 1
        assert server.store.pending_submissions() == []


class TestDrain:
    def test_shutdown_finishes_batch_and_queued_jobs_survive(self, tmp_path):
        state_dir = tmp_path / "svc"
        server = BudgetServer(state_dir, batch_size=1)
        server.add_tenant("alice", epsilon_budget=100.0)
        for i in range(6):
            server.submit(spec("alice", seed=i, work_ms=60.0))
        thread = threading.Thread(
            target=server.serve, kwargs={"poll_interval": 0.01}
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and server.queue.counts()["done"] < 1:
            time.sleep(0.01)
        server.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        counts = server.queue.counts()
        # The in-flight batch completed; nothing was abandoned mid-run.
        assert counts["running"] == 0
        assert counts["done"] >= 1
        assert counts["done"] + counts["admitted"] == 6

        # Queued jobs survive to a fresh server; finished jobs stay finished.
        restarted = BudgetServer(state_dir, batch_size=4)
        finished = {
            r.job_id: (r.attempts, r.finished_seq)
            for r in restarted.queue.by_status("done")
        }
        restarted.run_until_idle()
        assert restarted.queue.counts()["done"] == 6
        for job_id, before in finished.items():
            record = restarted.queue.get(job_id)
            assert (record.attempts, record.finished_seq) == before
        assert restarted.verify()["alice"].ok


class TestReport:
    def test_structure_and_rendering(self):
        server = BudgetServer()
        server.add_tenant("alice", epsilon_budget=2.0)
        server.add_tenant("bob", epsilon_budget=0.01)
        server.submit(spec("alice"), job_id="a0")
        server.submit(spec("bob"), job_id="b0")  # over budget -> refused
        server.run_until_idle()
        report = build_budget_report(server)
        alice, bob = report["tenants"]["alice"], report["tenants"]["bob"]
        assert alice["ledger"]["verified"] and bob["ledger"]["verified"]
        assert 0.0 < alice["spent_epsilon"] <= 2.0
        assert alice["utilization"] == alice["spent_epsilon"] / 2.0
        assert bob["spent_epsilon"] == 0.0
        assert bob["refusals"][0]["job_id"] == "b0"
        assert report["jobs"]["done"] == 1 and report["jobs"]["refused"] == 1
        assert alice["epsilon_trajectory"]

        markdown = render_budget_report(report)
        assert "alice" in markdown and "bob" in markdown
        assert "refus" in markdown.lower()
        payload = json.loads(render_budget_report(report, fmt="json"))
        assert payload["tenants"]["bob"]["refusals"]
        with pytest.raises(ValueError):
            render_budget_report(report, fmt="yaml")


class TestCli:
    def test_round_trip(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        state_dir = str(tmp_path / "svc")
        assert cli_main(
            ["tenants", "add", "alice", "--state-dir", state_dir, "--epsilon", "4.0"]
        ) == 0
        assert cli_main(
            ["submit", "--state-dir", state_dir, "--tenant", "alice",
             "--sigma", "1.1", "--sample-rate", "0.01", "--steps", "100"]
        ) == 0
        assert "spooled" in capsys.readouterr().out
        assert cli_main(["serve", "--state-dir", state_dir, "--once"]) == 0
        assert cli_main(["tenants", "list", "--state-dir", state_dir]) == 0
        assert "alice" in capsys.readouterr().out
        assert cli_main(
            ["tenants", "report", "--state-dir", state_dir, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenants"]["alice"]["spent_epsilon"] > 0.0
        assert payload["tenants"]["alice"]["ledger"]["verified"]
        assert payload["jobs"]["done"] == 1

    def test_set_budget_unblocks_pending(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        state_dir = str(tmp_path / "svc")
        assert cli_main(
            ["tenants", "add", "carol", "--state-dir", state_dir,
             "--epsilon", "0.01", "--on-overspend", "queue"]
        ) == 0
        assert cli_main(
            ["submit", "--state-dir", state_dir, "--tenant", "carol",
             "--sigma", "1.1", "--sample-rate", "0.01", "--steps", "100"]
        ) == 0
        assert cli_main(["serve", "--state-dir", state_dir, "--once"]) == 0
        server = BudgetServer(state_dir)
        assert server.queue.counts()["pending"] == 1
        assert cli_main(
            ["tenants", "set-budget", "carol", "--state-dir", state_dir,
             "--epsilon", "5.0"]
        ) == 0
        assert cli_main(["serve", "--state-dir", state_dir, "--once"]) == 0
        server = BudgetServer(state_dir)
        assert server.queue.counts()["done"] == 1
        capsys.readouterr()
