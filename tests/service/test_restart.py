"""Durability: bit-identical restart accounting and kill-anywhere recovery.

The SIGKILL test is a real subprocess test: a child server process is
killed with no chance to clean up, and the restarted server must (a)
resume queued jobs, (b) leave finished jobs finished, and (c) carry
every tenant's hash chain forward bit-identically from the pre-kill
prefix.  The SIGTERM test exercises the CLI's graceful-drain path.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.service import BudgetServer, JobSpec, write_submission
from repro.service.persist import ServiceStore
from tests.service.test_concurrent import exact_budget_for

pytestmark = pytest.mark.service

SRC = str(Path(repro.__file__).resolve().parents[1])

SIGMA, SAMPLE_RATE, STEPS = 1.2, 0.02, 60


def spec(tenant, *, seed=0, work_ms=0.0):
    return JobSpec(
        tenant=tenant, sigma=SIGMA, sample_rate=SAMPLE_RATE, steps=STEPS,
        dim=8, seed=seed, work_ms=work_ms,
    )


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def done_count(state_dir) -> int:
    """Finished jobs according to the newest on-disk snapshot."""
    try:
        state = ServiceStore(state_dir).load()
    except Exception:
        return 0  # snapshot mid-rotation; poll again
    if state is None:
        return 0
    return sum(1 for r in state["queue"]["records"] if r["status"] == "done")


def wait_for_done(state_dir, minimum, proc, log_path, *, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early (rc={proc.returncode}):\n"
                f"{Path(log_path).read_text()}"
            )
        if done_count(state_dir) >= minimum:
            return
        time.sleep(0.05)
    raise AssertionError(f"no {minimum} finished jobs within {timeout}s")


def test_restart_accounting_bit_identical(tmp_path):
    state_dir = tmp_path / "svc"
    server = BudgetServer(state_dir)
    server.add_tenant("alice", epsilon_budget=5.0)
    server.add_tenant("bob", epsilon_budget=0.05)
    for i in range(3):
        server.submit(spec("alice", seed=i))
    server.submit(spec("bob"))  # over budget -> refused annotation
    server.run_until_idle()

    curves = {t.name: t.accountant.rdp_curve().copy() for t in server.registry}
    heads = {t.name: t.ledger.head for t in server.registry}
    spent = {t.name: t.spent_epsilon() for t in server.registry}

    restarted = BudgetServer(state_dir)
    assert restarted.seq == server.seq
    assert restarted.queue.state_dict() == server.queue.state_dict()
    for tenant in restarted.registry:
        # The replayed accountant is *bit*-identical, not just close.
        assert np.array_equal(tenant.accountant.rdp_curve(), curves[tenant.name])
        assert tenant.ledger.head == heads[tenant.name]
        assert tenant.spent_epsilon() == spent[tenant.name]
    for verification in restarted.verify(tol=1e-9).values():
        assert verification.ok


def test_sigkill_midstream_resume_acceptance(tmp_path):
    """End-to-end acceptance: mixed two-tenant stream, SIGKILL, restart.

    alice's budget fits all 10 of her jobs exactly; bob's fits exactly 2
    of his 4 — the other 2 must be refused pre-dispatch with an auditable
    ledger annotation, and no kill timing may change any of that.
    """
    state_dir = tmp_path / "svc"
    setup = BudgetServer(state_dir)
    setup.add_tenant(
        "alice", epsilon_budget=exact_budget_for(SIGMA, SAMPLE_RATE, STEPS, 10)
    )
    setup.add_tenant(
        "bob", epsilon_budget=exact_budget_for(SIGMA, SAMPLE_RATE, STEPS, 2)
    )
    store = ServiceStore(state_dir)
    for i in range(8):
        write_submission(store.spool_dir, spec("alice", seed=i, work_ms=60.0))
    for i in range(4):
        write_submission(store.spool_dir, spec("bob", seed=100 + i, work_ms=60.0))

    script = tmp_path / "serve_child.py"
    script.write_text(
        "from repro.service.server import BudgetServer\n"
        f"server = BudgetServer({str(state_dir)!r}, workers=4, batch_size=4)\n"
        "server.serve(poll_interval=0.05)\n"
    )
    log_path = tmp_path / "child.log"
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            env=child_env(), stdout=log, stderr=subprocess.STDOUT,
        )
    try:
        wait_for_done(state_dir, 2, proc, log_path)
    finally:
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

    server = BudgetServer(state_dir, workers=4, batch_size=4)
    # Pre-kill facts, read back from the surviving snapshot (jobs that
    # were mid-flight have already been reverted to "admitted").
    pre_hashes = {
        t.name: [r.entry_hash for r in t.ledger.entries] for t in server.registry
    }
    pre_done = {
        r.job_id: (r.attempts, r.finished_seq, r.result)
        for r in server.queue.by_status("done")
    }
    assert len(pre_done) >= 2
    assert not server.queue.by_status("running")
    for verification in server.verify(tol=1e-9).values():
        assert verification.ok  # chains intact straight after the kill

    # Two more submissions arrived while the server was down.
    for i in range(2):
        write_submission(store.spool_dir, spec("alice", seed=200 + i))
    server.run_until_idle()

    counts = server.queue.counts()
    assert counts["pending"] == counts["admitted"] == counts["running"] == 0
    assert counts["failed"] == 0
    assert counts["done"] == 12 and counts["refused"] == 2

    # >= 1 refusal, decided before dispatch, with an auditable record.
    refused = server.queue.by_status("refused")
    assert refused and all(r.attempts == 0 for r in refused)
    assert all(r.spec.tenant == "bob" for r in refused)
    bob = server.registry.get("bob")
    annotated = {
        r.meta["job_id"] for r in bob.ledger.entries if r.is_annotation
    }
    assert {r.job_id for r in refused} == annotated

    # Finished jobs were not re-run by the restart.
    for job_id, before in pre_done.items():
        record = server.queue.get(job_id)
        assert record.status == "done"
        assert (record.attempts, record.finished_seq, record.result) == before

    # The pre-kill chain is a bit-identical prefix of the final chain,
    # and no tenant's replayed spend exceeds its budget.
    for tenant in server.registry:
        hashes = [r.entry_hash for r in tenant.ledger.entries]
        prefix = pre_hashes[tenant.name]
        assert hashes[: len(prefix)] == prefix
        verification = tenant.verify(tol=1e-9)
        assert verification.ok, str(verification)
        assert verification.replayed_epsilon <= tenant.policy.epsilon_budget
    assert server.registry.get("alice").spent_epsilon() == (
        server.registry.get("alice").policy.epsilon_budget
    )


def test_sigterm_graceful_drain_via_cli(tmp_path):
    state_dir = tmp_path / "svc"
    setup = BudgetServer(state_dir)
    setup.add_tenant("alice", epsilon_budget=50.0)
    store = ServiceStore(state_dir)
    for i in range(6):
        write_submission(store.spool_dir, spec("alice", seed=i, work_ms=60.0))

    log_path = tmp_path / "serve.log"
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "serve",
             "--state-dir", str(state_dir), "--workers", "2",
             "--batch-size", "1", "--poll", "0.05"],
            env=child_env(), stdout=log, stderr=subprocess.STDOUT,
        )
    try:
        wait_for_done(state_dir, 1, proc, log_path)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)
    output = log_path.read_text()
    assert rc == 0, output
    assert "draining" in output and "drained" in output

    server = BudgetServer(state_dir)
    counts = server.queue.counts()
    assert counts["running"] == 0  # the in-flight batch completed
    assert counts["done"] >= 1
    assert counts["done"] + counts["admitted"] == 6  # queued jobs survived
    finished = {
        r.job_id: (r.attempts, r.finished_seq)
        for r in server.queue.by_status("done")
    }
    server.run_until_idle()
    assert server.queue.counts()["done"] == 6
    for job_id, before in finished.items():
        record = server.queue.get(job_id)
        assert (record.attempts, record.finished_seq) == before
    assert server.verify(tol=1e-9)["alice"].ok
