"""Admission-control unit tests: budget math, refusals, pending policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import verify_ledger
from repro.service import (
    AdmissionController,
    BudgetServer,
    JobSpec,
    TenantPolicy,
    TenantRegistry,
    replay_accountant,
)

pytestmark = pytest.mark.service


def spec(tenant="alice", sigma=1.1, sample_rate=0.01, steps=100, **kw):
    return JobSpec(tenant=tenant, sigma=sigma, sample_rate=sample_rate, steps=steps, **kw)


class TestCostOf:
    """The pure pre-composition helper the controller is built on."""

    def test_does_not_mutate_state(self):
        acc = RdpAccountant()
        acc.step(1.0, 0.01, 50)
        before_rdp = acc.rdp_curve()
        before_history = list(acc.history)
        acc.cost_of(1.2, 0.02, 200, delta=1e-5)
        assert np.array_equal(acc.rdp_curve(), before_rdp)
        assert acc.history == before_history

    def test_matches_step_then_get_epsilon_exactly(self):
        probe = RdpAccountant()
        probe.step(1.0, 0.01, 50)
        projected = probe.cost_of(1.2, 0.02, 200, delta=1e-5)
        stepped = RdpAccountant()
        stepped.step(1.0, 0.01, 50)
        stepped.step(1.2, 0.02, 200)
        assert projected == stepped.get_epsilon(1e-5)

    def test_empty_accountant(self):
        acc = RdpAccountant()
        stepped = RdpAccountant()
        stepped.step(1.0, 0.05, 10)
        assert acc.cost_of(1.0, 0.05, 10, delta=1e-5) == stepped.get_epsilon(1e-5)

    def test_validation(self):
        acc = RdpAccountant()
        with pytest.raises(ValueError):
            acc.cost_of(-1.0, 0.01, 1, delta=1e-5)
        with pytest.raises(ValueError):
            acc.cost_of(1.0, 2.0, 1, delta=1e-5)
        with pytest.raises(ValueError):
            acc.cost_of(1.0, 0.01, 0, delta=1e-5)


class TestAdmission:
    def make(self, *, budget=1.0, on_overspend="refuse"):
        registry = TenantRegistry()
        registry.add("alice", epsilon_budget=budget, on_overspend=on_overspend)
        return registry, AdmissionController(registry)

    def test_admits_within_budget_and_commits(self):
        registry, ctl = self.make(budget=10.0)
        decision = ctl.admit(spec(), job_id="j0")
        tenant = registry.get("alice")
        assert decision.admitted and decision.outcome == "admitted"
        assert tenant.spent_epsilon() == decision.projected_epsilon
        assert len(tenant.ledger.entries) == 1
        record = tenant.ledger.entries[0]
        assert record.mechanism == "service.gaussian"
        assert record.namespace == "alice"
        assert record.meta["job_id"] == "j0"
        assert record.num_steps == 100 and not record.is_annotation

    def test_refuses_over_budget_without_spending(self):
        registry, ctl = self.make(budget=0.2)
        decision = ctl.admit(spec(steps=10_000), job_id="j0")
        tenant = registry.get("alice")
        assert not decision.admitted and decision.outcome == "refused"
        assert tenant.spent_epsilon() == 0.0
        # The refusal itself is chained, auditable and non-spending.
        assert len(tenant.ledger.entries) == 1
        record = tenant.ledger.entries[0]
        assert record.is_annotation
        assert record.mechanism == "annotation.refused"
        assert record.meta["job_id"] == "j0"
        assert record.meta["projected_epsilon"] == decision.projected_epsilon
        verification = verify_ledger(tenant.ledger, tenant.accountant)
        assert verification.ok

    def test_greedy_sequence_stops_exactly_at_budget(self):
        registry, ctl = self.make(budget=1.0)
        outcomes = [ctl.admit(spec(), job_id=f"j{i}").outcome for i in range(30)]
        admitted = outcomes.count("admitted")
        # Independently recompute the greedy admissible count.
        probe = RdpAccountant()
        expected = 0
        while probe.cost_of(1.1, 0.01, 100, delta=1e-5) <= 1.0:
            probe.step(1.1, 0.01, 100)
            expected += 1
        assert 0 < admitted < 30
        assert admitted == expected
        # Everything after the first refusal is refused too (costs identical).
        assert outcomes[:admitted] == ["admitted"] * admitted
        assert set(outcomes[admitted:]) == {"refused"}
        tenant = registry.get("alice")
        assert tenant.spent_epsilon() <= 1.0
        assert verify_ledger(tenant.ledger, tenant.accountant).ok

    def test_queue_policy_parks_without_annotation(self):
        registry, ctl = self.make(budget=0.2, on_overspend="queue")
        decision = ctl.admit(spec(steps=10_000), job_id="j0")
        tenant = registry.get("alice")
        assert not decision.admitted and decision.outcome == "queued"
        assert tenant.ledger.entries == []

    def test_unknown_tenant(self):
        _, ctl = self.make()
        with pytest.raises(KeyError):
            ctl.admit(spec(tenant="mallory"), job_id="j0")


class TestReplayAccountant:
    def test_bit_identical_to_live(self):
        registry, ctl = self.make_registry()
        for i in range(5):
            ctl.admit(spec(sigma=1.0 + 0.1 * i, steps=50 + i), job_id=f"j{i}")
        ctl.admit(spec(steps=10**6), job_id="refused")  # annotation entry
        tenant = registry.get("alice")
        replayed = replay_accountant(tenant.ledger)
        assert np.array_equal(replayed.rdp_curve(), tenant.accountant.rdp_curve())
        assert replayed.history == tenant.accountant.history

    @staticmethod
    def make_registry():
        registry = TenantRegistry()
        registry.add("alice", epsilon_budget=2.0)
        return registry, AdmissionController(registry)


class TestServerSubmit:
    def test_pending_jobs_admitted_after_budget_raise(self, tmp_path):
        server = BudgetServer(tmp_path / "svc", batch_size=2)
        server.add_tenant("carol", epsilon_budget=0.05, on_overspend="queue")
        record, decision = server.submit(spec(tenant="carol"))
        assert record.status == "pending" and decision.outcome == "queued"
        assert server.run_once() == 0  # still parked
        server.set_tenant_budget("carol", 5.0)
        record2 = server.queue.get(record.job_id)
        assert record2.status == "admitted"
        server.run_until_idle()
        assert server.queue.get(record.job_id).status == "done"

    def test_tenant_policy_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(epsilon_budget=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(epsilon_budget=1.0, delta=2.0)
        with pytest.raises(ValueError):
            TenantPolicy(epsilon_budget=1.0, on_overspend="explode")
