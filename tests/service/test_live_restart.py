"""Acceptance: live observability survives a SIGKILL.

A child ``repro serve --metrics-port`` process is fed an over-burn-rate
tenant until its ε-burn-rate alert fires on the live endpoint, then is
SIGKILLed with no chance to clean up.  The restarted server must (a)
serve a scrape whose per-tenant ε-spend gauges match the audited
``verify_ledger`` replay to 1e-9 and (b) still carry the fired alert as
a hash-chained ledger annotation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.privacy.ledger import verify_ledger
from repro.service import BudgetServer, JobSpec, write_submission
from repro.service.persist import ServiceStore
from tests.service.test_restart import child_env, done_count, wait_for_done

pytestmark = pytest.mark.service

#: Small budget so the linear burn-rate projection crosses it within the
#: horizon after a handful of jobs (RDP composition is sublinear: the
#: first admission is by far the most expensive, later ones add ~0.07ε).
BURNER_BUDGET = 2.0


def spec(tenant, *, seed=0, work_ms=0.0):
    return JobSpec(
        tenant=tenant, sigma=1.1, sample_rate=0.01, steps=100, dim=8,
        seed=seed, work_ms=work_ms,
    )


def _wait_for(predicate, proc, log_path, *, timeout=120.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early (rc={proc.returncode}):\n"
                f"{log_path.read_text()}"
            )
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def _metrics_base(log_path, proc):
    """The child's metrics base URL, parsed from its serve banner."""
    def find():
        match = re.search(r"\[metrics at (http://[^/\]]+)/metrics\]",
                          log_path.read_text())
        return match.group(1) if match else None

    return _wait_for(find, proc, log_path, message="metrics banner")


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return json.load(resp)


def _scrape_epsilon_gauges(base) -> dict[str, float]:
    with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
        text = resp.read().decode()
    return {
        m.group(1): float(m.group(2))
        for m in re.finditer(
            r'^service_tenant_epsilon_spent\{tenant="([^"]+)"\} (\S+)$',
            text,
            re.M,
        )
    }


def test_sigkill_live_metrics_and_alert_acceptance(tmp_path):
    state_dir = tmp_path / "svc"
    setup = BudgetServer(state_dir)
    setup.add_tenant("burner", epsilon_budget=BURNER_BUDGET)
    setup.add_tenant("steady", epsilon_budget=50.0)
    store = ServiceStore(state_dir)

    log_path = tmp_path / "serve.log"
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "serve",
             "--state-dir", str(state_dir), "--workers", "2",
             "--batch-size", "1", "--poll", "0.05", "--metrics-port", "0"],
            env=child_env(), stdout=log, stderr=subprocess.STDOUT,
        )
    try:
        base = _metrics_base(log_path, proc)

        # Feed jobs one at a time so the child's ε-spend gauge window
        # sees spend *increasing* across service cycles (submitting all
        # upfront would commit ε in one admission burst — a flat window
        # with burn rate zero, which correctly never fires).
        for i in range(5):
            write_submission(store.spool_dir, spec("burner", seed=i))
            if i % 2 == 0:
                write_submission(
                    store.spool_dir, spec("steady", seed=100 + i)
                )
            _wait_for(
                lambda want=i + 1: done_count(state_dir) >= want,
                proc, log_path, message=f"{i + 1} finished jobs",
            )

        # The over-burn-rate tenant's alert fires on the live endpoint.
        active = _wait_for(
            lambda: [
                v for v in _get_json(base, "/alerts.json")["active"]
                if v["kind"] == "epsilon_burn_rate"
                and v["labels"].get("tenant") == "burner"
            ],
            proc, log_path, message="burn-rate alert on endpoint",
        )
        assert active[0]["severity"] == "critical"
        assert active[0]["projected"] > BURNER_BUDGET

        # The same verdict is visible as a firing gauge on the scrape.
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            scrape = resp.read().decode()
        assert re.search(
            r'^alert_firing\{rule="epsilon_burn_rate\[tenant=burner\]"\} 1\.0$',
            scrape, re.M,
        )
        pre_kill = _scrape_epsilon_gauges(base)
        assert set(pre_kill) == {"burner", "steady"}
    finally:
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

    # ------------------------------------------------- restarted server
    server = BudgetServer(state_dir, metrics_port=0)
    try:
        base = server.metrics_address
        gauges = _scrape_epsilon_gauges(base)
        assert set(gauges) == {"burner", "steady"}
        for tenant in server.registry:
            verification = verify_ledger(
                tenant.ledger, tenant.accountant, strict=False
            )
            assert verification.ok, str(verification)
            # The scraped gauge equals the audited hash-chain replay.
            assert gauges[tenant.name] == pytest.approx(
                verification.replayed_epsilon, abs=1e-9
            )
        # ε committed before the kill is never lost: the restarted
        # replay is at least what the last pre-kill scrape showed.
        assert gauges["burner"] >= pre_kill["burner"] - 1e-9

        # The fired alert survived the kill as a ledger annotation on
        # the tenant's hash chain.
        burner = server.registry.get("burner")
        alerts = [
            r for r in burner.ledger.entries
            if r.mechanism == "annotation.alert"
        ]
        assert alerts, "burn-rate alert annotation lost by SIGKILL"
        meta = alerts[0].meta
        assert meta["alert"] == "epsilon_burn_rate[tenant=burner]"
        assert meta["projected"] > BURNER_BUDGET
        assert meta["severity"] == "critical"
        # And it still verifies as part of the chain.
        assert burner.verify(tol=1e-9).ok
    finally:
        server.shutdown()
