"""Tier-1 lint gate: run ruff with the repo's pyproject configuration.

Skips when ruff is not installed (the check then runs wherever the dev
environment provides it); when available, lint errors fail the suite with
ruff's own diagnostics as the assertion message.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def ruff_available() -> bool:
    return importlib.util.find_spec("ruff") is not None


@pytest.mark.skipif(not ruff_available(), reason="ruff is not installed")
def test_ruff_clean():
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"ruff found issues:\n{result.stdout}{result.stderr}"
