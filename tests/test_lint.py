"""Tier-1 lint gates: ruff, plus an AST allocation check for the hot path.

The ruff gate skips when ruff is not installed (the check then runs
wherever the dev environment provides it); when available, lint errors
fail the suite with ruff's own diagnostics as the assertion message.

The allocation gate is pure stdlib ``ast`` and always runs: the release
hot-path modules must route every buffer through the
:mod:`repro.backend.workspace` arena, so a direct ``np.empty`` /
``np.zeros`` there is a regression of the zero-allocation contract even
when it is numerically harmless.
"""

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Release hot-path modules: all allocation goes through the workspace
#: arena.  ``repro/backend/workspace.py`` (the arena itself) and
#: ``repro/backend/reference.py`` (the serial historical golden, kept
#: byte-for-byte as the parity baseline) are exempt by design.
HOT_PATH_MODULES = (
    "src/repro/core/perturbation.py",
    "src/repro/backend/fused.py",
    "src/repro/backend/cext.py",
    "src/repro/backend/threads.py",
)

#: ``np.<name>`` calls that allocate fresh buffers.
FORBIDDEN_ALLOCATORS = frozenset({"empty", "zeros", "empty_like", "zeros_like"})


def _direct_allocations(source: str, filename: str) -> list[str]:
    """``file:line np.<fn>`` for every direct numpy allocation call."""
    violations = []
    for node in ast.walk(ast.parse(source, filename=filename)):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        if (
            func.attr in FORBIDDEN_ALLOCATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            violations.append(f"{filename}:{node.lineno} np.{func.attr}")
    return violations


def test_hot_path_allocates_only_through_workspace():
    violations = []
    for relative in HOT_PATH_MODULES:
        path = REPO_ROOT / relative
        violations.extend(_direct_allocations(path.read_text(), relative))
    assert violations == [], (
        "direct numpy allocation in a release hot-path module — use "
        "repro.backend.workspace (take/scratch/zeros) instead:\n  "
        + "\n  ".join(violations)
    )


def test_hot_path_module_list_is_current():
    """The lint covers real files (a rename must update the list)."""
    for relative in HOT_PATH_MODULES:
        assert (REPO_ROOT / relative).is_file(), f"{relative} missing"


#: Timing-sensitive modules: interval measurements must use the
#: monotonic ``time.perf_counter`` — bare ``time.time()`` is subject to
#: NTP slews/wall-clock jumps and poisons latency metrics and benchmark
#: ratios.  (``time.time()`` stays legal elsewhere, e.g. for timestamps
#: in persisted records.)
TIMING_SENSITIVE_MODULES = HOT_PATH_MODULES + (
    "src/repro/runtime/pool.py",
    "src/repro/service/admission.py",
    "src/repro/service/server.py",
    "src/repro/telemetry/recorder.py",
    "src/repro/telemetry/tracing.py",
    "src/repro/telemetry/live/registry.py",
    "src/repro/telemetry/live/exporter.py",
    "src/repro/telemetry/live/health.py",
    "src/repro/telemetry/live/profiler.py",
    "benchmarks/bench_live.py",
    "benchmarks/bench_telemetry.py",
)


def _wall_clock_calls(source: str, filename: str) -> list[str]:
    """``file:line`` for every bare ``time.time()`` call."""
    violations = []
    for node in ast.walk(ast.parse(source, filename=filename)):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        if (
            func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            violations.append(f"{filename}:{node.lineno} time.time()")
    return violations


def test_timing_sensitive_modules_use_perf_counter():
    violations = []
    for relative in TIMING_SENSITIVE_MODULES:
        path = REPO_ROOT / relative
        violations.extend(_wall_clock_calls(path.read_text(), relative))
    assert violations == [], (
        "bare time.time() in a timing-sensitive module — use "
        "time.perf_counter() for interval measurement:\n  "
        + "\n  ".join(violations)
    )


def test_timing_sensitive_module_list_is_current():
    for relative in TIMING_SENSITIVE_MODULES:
        assert (REPO_ROOT / relative).is_file(), f"{relative} missing"


def test_wall_clock_lint_detects_offender():
    """The AST check actually catches the pattern it claims to."""
    assert _wall_clock_calls("import time\nt0 = time.time()\n", "x.py") == [
        "x.py:2 time.time()"
    ]
    assert _wall_clock_calls("import time\nt0 = time.perf_counter()\n", "x.py") == []


def ruff_available() -> bool:
    return importlib.util.find_spec("ruff") is not None


@pytest.mark.skipif(not ruff_available(), reason="ruff is not installed")
def test_ruff_clean():
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"ruff found issues:\n{result.stdout}{result.stderr}"
