"""Tests for MetricsRecorder, StepTrace and the summary reporter."""

import time

import numpy as np
import pytest

from repro.telemetry import MetricsRecorder, StepTrace, metric_summary, summarize


class TestSeries:
    def test_record_appends_points(self):
        rec = MetricsRecorder()
        rec.record("loss", 2.0)
        rec.record("loss", 1.5)
        assert rec.series["loss"] == [(0, 2.0), (1, 1.5)]
        assert rec.values("loss") == [2.0, 1.5]

    def test_explicit_step(self):
        rec = MetricsRecorder()
        rec.record("acc", 0.5, step=10)
        assert rec.series["acc"] == [(10, 0.5)]

    def test_values_of_unknown_series_empty(self):
        assert MetricsRecorder().values("nope") == []

    def test_values_are_floats(self):
        rec = MetricsRecorder()
        rec.record("x", np.float32(1.25))
        assert isinstance(rec.values("x")[0], float)


class TestCounters:
    def test_increment(self):
        rec = MetricsRecorder()
        rec.increment("steps")
        rec.increment("steps", 2)
        assert rec.counters["steps"] == 3


class TestSpans:
    def test_span_accumulates(self):
        rec = MetricsRecorder()
        with rec.span("phase"):
            time.sleep(0.01)
        with rec.span("phase"):
            pass
        assert rec.timers["phase"] >= 0.01

    def test_nested_spans_both_counted(self):
        rec = MetricsRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                time.sleep(0.005)
        assert rec.timers["outer"] >= rec.timers["inner"] >= 0.005

    def test_span_records_on_exception(self):
        rec = MetricsRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("x")
        assert "boom" in rec.timers


class TestSteps:
    def test_step_captures_metrics_and_timings(self):
        rec = MetricsRecorder()
        rec.start_step(1)
        rec.record("loss", 3.0)
        with rec.span("clip"):
            pass
        step = rec.end_step()
        assert step.iteration == 1
        assert step.metrics == {"loss": 3.0}
        assert "clip" in step.timings
        assert rec.events == [step]
        # The flat series got the same point, keyed by the iteration.
        assert rec.series["loss"] == [(1, 3.0)]

    def test_double_start_raises(self):
        rec = MetricsRecorder()
        rec.start_step(1)
        with pytest.raises(RuntimeError, match="still open"):
            rec.start_step(2)

    def test_end_without_start_raises(self):
        with pytest.raises(RuntimeError, match="no step is open"):
            MetricsRecorder().end_step()

    def test_last_write_wins_within_step(self):
        rec = MetricsRecorder()
        rec.start_step(5)
        rec.record("x", 1.0)
        rec.record("x", 2.0)
        step = rec.end_step()
        assert step.metrics["x"] == 2.0
        assert rec.values("x") == [1.0, 2.0]  # series keeps both points


class TestStepTrace:
    def test_round_trip_dict(self):
        step = StepTrace(3, metrics={"loss": 1.0}, timings={"clip": 0.5})
        assert StepTrace.from_dict(step.to_dict()) == step

    def test_from_dict_defaults(self):
        step = StepTrace.from_dict({"iteration": 7})
        assert step == StepTrace(7)


class TestReport:
    def test_metric_summary(self):
        rec = MetricsRecorder()
        for v in (1.0, 3.0, 2.0):
            rec.record("loss", v)
        stats = metric_summary(rec, "loss")
        assert stats["count"] == 3
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["last"] == 2.0

    def test_metric_summary_ignores_nan(self):
        rec = MetricsRecorder()
        rec.record("loss", float("nan"))
        rec.record("loss", 4.0)
        assert metric_summary(rec, "loss")["mean"] == 4.0

    def test_metric_summary_unknown_raises(self):
        with pytest.raises(KeyError):
            metric_summary(MetricsRecorder(), "nope")

    def test_summarize_contains_sections(self):
        rec = MetricsRecorder()
        rec.record("loss", 1.0)
        rec.increment("steps")
        with rec.span("clip"):
            pass
        text = summarize(rec, title="demo")
        assert "demo" in text
        assert "loss" in text and "clip" in text and "steps" in text

    def test_summarize_empty(self):
        assert "no telemetry" in summarize(MetricsRecorder())
