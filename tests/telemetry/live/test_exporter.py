"""Prometheus rendering + HTTP endpoint + bounded JSONL appender.

Includes the tier-1 smoke: a 2-job :class:`BudgetServer` run scraped
live through ``metrics_port``, with every line validated against the
text exposition format 0.0.4 grammar.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.privacy.ledger import verify_ledger
from repro.service import BudgetServer, JobSpec
from repro.telemetry.live import (
    JsonlTimeSeries,
    MetricsExporter,
    MetricsRegistry,
    render_prometheus,
)

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
_VALUE = r"(?:[+-]?Inf|NaN|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
SAMPLE_LINE = re.compile(
    rf"^({_NAME})(?:\{{{_LABEL}(?:,{_LABEL})*\}})? {_VALUE}$"
)


def validate_prometheus(text: str) -> dict[str, str]:
    """Validate exposition-format 0.0.4 text; returns ``{family: type}``.

    Checks the line grammar, one ``# TYPE`` per family emitted before its
    samples, sample names consistent with the declared family (histogram
    ``_bucket``/``_sum``/``_count`` expansions included), and histogram
    bucket monotonicity with ``le="+Inf"`` equal to ``_count``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    buckets: dict[str, list[int]] = {}
    counts: dict[str, int] = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group(1)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
        assert family in types, f"sample {name!r} before its # TYPE"
        if types[family] == "histogram" and name.endswith("_bucket"):
            series = line.split("{", 1)[1]
            value = int(float(line.rsplit(" ", 1)[1]))
            buckets.setdefault(family + series.split("}")[0], []).append(value)
            if 'le="+Inf"' in line:
                counts.setdefault(family, value)
    for key, seq in buckets.items():
        assert seq == sorted(seq), f"non-monotone buckets for {key}: {seq}"
    return types


class TestRenderPrometheus:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("releases_gaussian", 3)
        reg.inc("alerts_fired", labels={"rule": 'odd"name\\path'})
        reg.set_gauge("loss", 0.25, step=4)
        for step, value in enumerate((0.05, 0.4, 0.9, 2.0)):
            reg.observe_series("clipped_fraction", value, step=step)
        reg.observe_series("service_admission_seconds", 0.002, step=0)
        return reg

    def test_output_is_valid_exposition_format(self):
        types = validate_prometheus(render_prometheus(self.make_registry()))
        assert types["releases_gaussian"] == "counter"
        assert types["loss"] == "gauge"
        assert types["clipped_fraction"] == "histogram"

    def test_gauge_histogram_collision_gets_last_suffix(self):
        text = render_prometheus(self.make_registry())
        # The series feeds a histogram; its last-value gauge view must
        # not share the family name.
        assert "\nclipped_fraction_last 2.0" in text
        assert re.search(r"^# TYPE clipped_fraction histogram$", text, re.M)
        assert re.search(r"^# TYPE clipped_fraction_last gauge$", text, re.M)

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(self.make_registry())
        rows = [l for l in text.splitlines() if l.startswith("clipped_fraction_bucket")]
        values = [int(l.rsplit(" ", 1)[1]) for l in rows]
        assert values == sorted(values)
        assert 'le="+Inf"} 4' in rows[-1]
        assert "clipped_fraction_count 4" in text

    def test_label_escaping(self):
        text = render_prometheus(self.make_registry())
        assert r'rule="odd\"name\\path"' in text

    def test_deterministic_output(self):
        assert render_prometheus(self.make_registry()) == render_prometheus(
            self.make_registry()
        )


class TestEndpointSmoke:
    """Tier-1: scrape a live BudgetServer during a short run."""

    def test_scrape_during_two_job_run(self):
        server = BudgetServer(metrics_port=0)
        try:
            server.add_tenant("alice", epsilon_budget=50.0)
            for i in range(2):
                server.submit(
                    JobSpec(
                        tenant="alice", sigma=1.1, sample_rate=0.01,
                        steps=100, dim=8, seed=i,
                    ),
                    job_id=f"a{i}",
                )
            server.run_until_idle()
            base = server.metrics_address
            assert base is not None
            with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode()
            types = validate_prometheus(text)
            assert types["service_tenant_epsilon_spent"] == "gauge"
            assert types["service_queue_depth"] == "gauge"
            # The scraped ε-spend gauge equals the audited ledger replay.
            match = re.search(
                r'^service_tenant_epsilon_spent\{tenant="alice"\} (\S+)$',
                text,
                re.M,
            )
            assert match is not None
            tenant = server.registry.get("alice")
            replayed = verify_ledger(
                tenant.ledger, tenant.accountant, strict=False
            ).replayed_epsilon
            assert float(match.group(1)) == pytest.approx(replayed, abs=1e-9)

            with urllib.request.urlopen(base + "/state.json", timeout=10) as resp:
                state = json.load(resp)
            assert state["service"]["jobs"]["done"] == 2
            assert any(
                g["name"] == "service_tenant_epsilon_spent"
                for g in state["metrics"]["gauges"]
            )
            with urllib.request.urlopen(base + "/alerts.json", timeout=10) as resp:
                alerts = json.load(resp)
            assert alerts["active"] == []
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/nope", timeout=10)
            assert err.value.code == 404
        finally:
            server.shutdown()

    def test_exporter_standalone_context_manager(self):
        reg = MetricsRegistry()
        reg.inc("events", 5)
        with MetricsExporter(reg, port=0) as exporter:
            with urllib.request.urlopen(
                exporter.address + "/metrics", timeout=10
            ) as resp:
                text = resp.read().decode()
        assert "events 5.0" in text
        validate_prometheus(text)


class TestJsonlTimeSeries:
    def test_append_and_tail(self, tmp_path):
        ts = JsonlTimeSeries(tmp_path / "live.jsonl")
        for i in range(5):
            ts.append({"seq": i})
        assert ts.tail(2) == [{"seq": 3}, {"seq": 4}]

    def test_file_size_stays_bounded(self, tmp_path):
        path = tmp_path / "live.jsonl"
        ts = JsonlTimeSeries(path, max_bytes=2000)
        for i in range(400):
            ts.append({"seq": i, "pad": "x" * 40})
        # Compaction keeps the newest half whenever the cap is crossed.
        assert path.stat().st_size <= 2 * 2000
        newest = ts.tail(1)[0]
        assert newest["seq"] == 399
