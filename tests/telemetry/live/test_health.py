"""HealthMonitor + AlertRule: every built-in rule fires on a violating
trace, a quiet trace fires nothing, edges are detected once, and fired
alerts annotate the hash-chained ledger."""

from __future__ import annotations

import math

import pytest

from repro.privacy.accountant import RdpAccountant
from repro.privacy.ledger import ReleaseLedger, verify_ledger
from repro.telemetry import MetricsRecorder
from repro.telemetry.live import (
    AlertRule,
    HealthMonitor,
    MetricsRegistry,
    default_training_rules,
    rule_from_dict,
)
from repro.telemetry.live.health import alert_meta


def quiet_registry() -> MetricsRegistry:
    """A healthy-looking trace: low clip rate, modest noise, GeoDP
    beating the right-angle baseline, stable ε, no runtime churn."""
    reg = MetricsRegistry()
    for step in range(20):
        reg.observe_series("clipped_fraction", 0.2, step=step)
        reg.observe_series("noise_to_signal", 0.8, step=step)
        reg.observe_series("angular_deviation", 1.1, step=step)
        reg.set_gauge(
            "service_tenant_epsilon_spent",
            0.5 + 0.0001 * step,
            step=step,
            labels={"tenant": "t"},
        )
    reg.inc("runtime_retries", 0)
    reg.inc("backend_fallbacks", 0)
    return reg


class TestRuleConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown alert rule kind"):
            AlertRule("nope", threshold=1.0)

    def test_burn_rate_requires_budget(self):
        with pytest.raises(ValueError, match="requires budget"):
            AlertRule("epsilon_burn_rate")

    def test_window_kind_requires_threshold(self):
        with pytest.raises(ValueError, match="requires threshold"):
            AlertRule("clip_saturation")

    def test_auto_name_includes_labels(self):
        rule = AlertRule(
            "epsilon_burn_rate", budget=1.0, labels={"tenant": "acme"}
        )
        assert rule.name == "epsilon_burn_rate[tenant=acme]"

    def test_dict_round_trip(self):
        rule = AlertRule(
            "noise_floor", threshold=4.0, window=8, severity="critical"
        )
        clone = rule_from_dict(rule.to_dict())
        assert clone.to_dict() == rule.to_dict()

    def test_default_training_rules_cover_builtins(self):
        kinds = {r.kind for r in default_training_rules()}
        assert kinds == {
            "clip_saturation",
            "noise_floor",
            "angular_regression",
            "retry_spike",
            "fallback_storm",
        }


class TestBuiltinRulesFire:
    """Each built-in rule on a trace violating exactly its invariant."""

    def test_epsilon_burn_rate_fires_on_overspend_trajectory(self):
        reg = MetricsRegistry()
        for step in range(8):
            reg.set_gauge(
                "service_tenant_epsilon_spent",
                0.1 * step,
                step=step,
                labels={"tenant": "t"},
            )
        rule = AlertRule(
            "epsilon_burn_rate",
            labels={"tenant": "t"},
            budget=2.0,
            horizon_steps=100,
            min_samples=2,
        )
        verdict = rule.evaluate(reg, {})
        # rate = 0.1/step; projected = 0.7 + 10.0 >> 2.0.
        assert verdict["firing"]
        assert verdict["burn_rate"] == pytest.approx(0.1)
        assert verdict["projected"] > rule.budget

    def test_epsilon_burn_rate_quiet_on_flat_spend(self):
        reg = MetricsRegistry()
        for step in range(8):
            reg.set_gauge(
                "service_tenant_epsilon_spent", 0.5, step=step,
                labels={"tenant": "t"},
            )
        rule = AlertRule(
            "epsilon_burn_rate", labels={"tenant": "t"}, budget=1.0,
            min_samples=2,
        )
        assert not rule.evaluate(reg, {})["firing"]

    def test_clip_saturation_fires(self):
        reg = MetricsRegistry()
        for step in range(8):
            reg.observe_series("clipped_fraction", 0.99, step=step)
        verdict = AlertRule("clip_saturation", threshold=0.95).evaluate(reg, {})
        assert verdict["firing"]
        assert verdict["value"] == pytest.approx(0.99)

    def test_noise_floor_fires(self):
        reg = MetricsRegistry()
        for step in range(8):
            reg.observe_series("noise_to_signal", 20.0, step=step)
        assert AlertRule("noise_floor", threshold=8.0).evaluate(reg, {})["firing"]

    def test_angular_regression_fires_past_baseline(self):
        reg = MetricsRegistry()
        for step in range(8):
            reg.observe_series("angular_deviation", math.pi / 2 + 0.3, step=step)
        rule = AlertRule("angular_regression", threshold=math.pi / 2)
        assert rule.evaluate(reg, {})["firing"]

    def test_retry_spike_fires_on_counter_delta(self):
        reg = MetricsRegistry()
        rule = AlertRule("retry_spike", threshold=4)
        memory: dict = {}
        reg.inc("runtime_retries", 1)
        # First evaluation only establishes the baseline.
        assert not rule.evaluate(reg, memory)["firing"]
        reg.inc("runtime_retries", 10)
        verdict = rule.evaluate(reg, memory)
        assert verdict["firing"]
        assert verdict["value"] == pytest.approx(10.0)

    def test_fallback_storm_fires_on_any_fallback(self):
        reg = MetricsRegistry()
        rule = AlertRule("fallback_storm", threshold=0)
        memory: dict = {}
        rule.evaluate(reg, memory)
        reg.inc("backend_fallbacks")
        assert rule.evaluate(reg, memory)["firing"]

    def test_min_samples_guards_short_windows(self):
        reg = MetricsRegistry()
        reg.observe_series("clipped_fraction", 1.0, step=0)
        rule = AlertRule("clip_saturation", threshold=0.5, min_samples=4)
        verdict = rule.evaluate(reg, {})
        assert not verdict["firing"]
        assert verdict["value"] is None


class TestQuietTrace:
    def test_no_builtin_rule_fires_on_healthy_trace(self):
        reg = quiet_registry()
        monitor = HealthMonitor(
            reg,
            default_training_rules()
            + [
                AlertRule(
                    "epsilon_burn_rate",
                    labels={"tenant": "t"},
                    budget=10.0,
                    min_samples=2,
                )
            ],
        )
        # Two evaluations so counter-delta rules get a real delta too.
        assert monitor.evaluate(step=19) == []
        assert monitor.evaluate(step=20) == []
        assert monitor.firing() == []
        assert monitor.fired == []


class TestMonitorEdges:
    def test_rising_edge_fires_once_and_recovers(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor(
            reg, [AlertRule("clip_saturation", threshold=0.5, window=4)]
        )
        for step in range(4):
            reg.observe_series("clipped_fraction", 0.9, step=step)
        assert len(monitor.evaluate(step=3)) == 1
        assert len(monitor.evaluate(step=3)) == 0  # still firing, no re-fire
        assert monitor.firing()[0]["rule"] == "clip_saturation"
        for step in range(4, 8):
            reg.observe_series("clipped_fraction", 0.1, step=step)
        assert monitor.evaluate(step=7) == []
        assert monitor.firing() == []
        # Second excursion is a fresh edge.
        for step in range(8, 12):
            reg.observe_series("clipped_fraction", 0.9, step=step)
        assert len(monitor.evaluate(step=11)) == 1
        assert reg.counter("alerts_fired", {"rule": "clip_saturation"}).value == 2

    def test_alert_firing_gauge_tracks_state(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor(
            reg, [AlertRule("clip_saturation", threshold=0.5, window=2, min_samples=2)]
        )
        for step in range(2):
            reg.observe_series("clipped_fraction", 0.9, step=step)
        monitor.evaluate(step=1)
        assert reg.gauge("alert_firing", {"rule": "clip_saturation"}).value == 1.0
        for step in range(2, 6):
            reg.observe_series("clipped_fraction", 0.0, step=step)
        monitor.evaluate(step=5)
        assert reg.gauge("alert_firing", {"rule": "clip_saturation"}).value == 0.0

    def test_set_rules_clears_stale_edge_state(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor(
            reg, [AlertRule("clip_saturation", threshold=0.5, window=2, min_samples=2)]
        )
        for step in range(2):
            reg.observe_series("clipped_fraction", 0.9, step=step)
        monitor.evaluate(step=1)
        monitor.set_rules([])
        assert monitor.firing() == []
        assert monitor._was_firing == {}


class TestLedgerAnnotation:
    def test_fired_alert_lands_in_hash_chain(self):
        reg = MetricsRegistry()
        ledger = ReleaseLedger(namespace="test")
        accountant = RdpAccountant()
        monitor = HealthMonitor(
            reg,
            [AlertRule("noise_floor", threshold=1.0, window=2, min_samples=2)],
            ledger=ledger,
            accountant=accountant,
        )
        for step in range(2):
            reg.observe_series("noise_to_signal", 5.0, step=step)
        monitor.evaluate(step=1)
        alerts = [e for e in ledger.entries if e.mechanism == "annotation.alert"]
        assert len(alerts) == 1
        assert alerts[0].meta["alert"] == "noise_floor"
        assert alerts[0].meta["value"] == pytest.approx(5.0)
        assert verify_ledger(ledger, accountant, strict=False).ok

    def test_annotator_callback_takes_precedence(self):
        reg = MetricsRegistry()
        seen = []
        monitor = HealthMonitor(
            reg,
            [AlertRule("noise_floor", threshold=1.0, window=2, min_samples=2)],
            annotator=seen.append,
        )
        for step in range(2):
            reg.observe_series("noise_to_signal", 5.0, step=step)
        monitor.evaluate(step=1)
        assert len(seen) == 1
        meta = alert_meta(seen[0])
        assert meta["alert"] == "noise_floor"
        assert meta["severity"] == "warning"


class TestWatchRecorder:
    def test_watch_evaluates_per_closed_step(self):
        reg = MetricsRegistry()
        recorder = MetricsRecorder()
        monitor = HealthMonitor(
            reg,
            [AlertRule("clip_saturation", threshold=0.5, window=2, min_samples=2)],
        )
        monitor.watch(recorder)
        for step in range(3):
            recorder.start_step(step)
            recorder.record("clipped_fraction", 0.9)
            recorder.end_step()
        assert monitor.firing()
        assert reg.counter("alerts_fired", {"rule": "clip_saturation"}).value == 1
