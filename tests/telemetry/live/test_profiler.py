"""SamplingProfiler: sampling a busy loop, folded output, Chrome-trace
folding, and lifecycle guards."""

from __future__ import annotations

import signal
import threading
import time

import pytest

from repro.telemetry.live import SamplingProfiler


def _spin(seconds: float) -> float:
    """Burn CPU (ITIMER_PROF only advances on CPU time)."""
    deadline = time.process_time() + seconds
    acc = 0.0
    while time.process_time() < deadline:
        acc += sum(i * i for i in range(200))
    return acc


class TestSampling:
    def test_busy_loop_is_sampled(self):
        profiler = SamplingProfiler(hz=250.0)
        with profiler:
            _spin(0.3)
        # 0.3s CPU at 250 Hz nominal: demand a loose floor, not exactness.
        assert profiler.sample_count >= 20
        assert "_spin" in profiler.collapsed()

    def test_collapsed_format(self, tmp_path):
        profiler = SamplingProfiler(hz=250.0)
        with profiler:
            _spin(0.2)
        out = tmp_path / "profile.folded"
        profiler.save_collapsed(out)
        text = out.read_text()
        assert text
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack  # frame;frame;... — leaf last
        total = sum(int(l.rsplit(" ", 1)[1]) for l in text.splitlines())
        assert total == profiler.sample_count

    def test_raw_ring_is_bounded(self):
        profiler = SamplingProfiler(hz=997.0, max_raw_samples=10)
        with profiler:
            _spin(0.15)
        assert len(profiler._raw) <= 10
        if profiler.sample_count > 10:
            assert profiler.dropped == profiler.sample_count - 10

    def test_summary_reports_hot_leaves(self):
        profiler = SamplingProfiler(hz=250.0)
        with profiler:
            _spin(0.2)
        summary = profiler.summary()
        assert summary["samples"] == profiler.sample_count
        assert summary["timer"] == "prof"
        assert summary["top_leaves"]
        assert all({"frame", "samples"} <= set(e) for e in summary["top_leaves"])


class TestChromeTrace:
    def test_samples_fold_into_existing_trace(self):
        profiler = SamplingProfiler(hz=250.0)
        with profiler:
            _spin(0.2)
        base = {"traceEvents": [{"name": "step", "ph": "X", "ts": 0, "dur": 5}]}
        merged = profiler.merge_into_chrome_trace(base)
        assert base["traceEvents"][0] in merged["traceEvents"]
        samples = [e for e in merged["traceEvents"] if e.get("ph") == "P"]
        assert samples
        frames = merged["stackFrames"]
        for event in samples:
            # Every sample's stack-frame id resolves, as does its parent chain.
            sf = event["sf"]
            seen = 0
            while sf is not None:
                assert sf in frames
                sf = frames[sf].get("parent")
                seen += 1
                assert seen < 200
        meta = [e for e in merged["traceEvents"] if e.get("ph") == "M"]
        assert any("profiler" in e["args"]["name"] for e in meta)


class TestLifecycle:
    def test_double_start_rejected(self):
        profiler = SamplingProfiler(hz=50.0)
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent_and_restores_handler(self):
        before = signal.getsignal(signal.SIGPROF)
        profiler = SamplingProfiler(hz=50.0)
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert signal.getsignal(signal.SIGPROF) == (before or signal.SIG_DFL)

    def test_non_main_thread_start_raises(self):
        errors = []

        def try_start():
            try:
                SamplingProfiler(hz=50.0).start()
            except RuntimeError as exc:
                errors.append(str(exc))

        t = threading.Thread(target=try_start)
        t.start()
        t.join()
        assert errors and "main thread" in errors[0]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="timer"):
            SamplingProfiler(timer="cpu")
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)
