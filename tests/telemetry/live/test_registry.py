"""MetricsRegistry: metric kinds, series routing, merge invariance.

The load-bearing property is the satellite requirement: histogram
merging over fixed bucket boundaries is **worker-count invariant** —
partitioning one observation stream across {1, 2, 4} workers and merging
the per-worker registries in job-index order yields bit-identical
deterministic projections.
"""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import MetricsRecorder
from repro.telemetry.live import (
    DEFAULT_LATENCY_BUCKETS,
    HISTOGRAM_SERIES,
    MetricsRegistry,
)


class TestMetricKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("events")
        reg.inc("events", 2.5)
        assert reg.counter("events").value == 3.5

    def test_labelled_counters_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("fired", labels={"rule": "a"})
        reg.inc("fired", labels={"rule": "b"})
        assert reg.counter("fired", {"rule": "a"}).value == 1.0
        assert reg.counter("fired", {"rule": "b"}).value == 1.0

    def test_gauge_window_and_same_step_replacement(self):
        reg = MetricsRegistry()
        g = reg.gauge("eps")
        g.set(1.0, step=3)
        g.set(2.0, step=3)  # same step -> replace, not append
        g.set(3.0, step=4)
        assert g.value == 3.0
        assert g.samples() == [(3, 2.0), (4, 3.0)]

    def test_gauge_window_is_bounded(self):
        reg = MetricsRegistry(gauge_window=8)
        g = reg.gauge("x")
        for i in range(100):
            g.set(float(i), step=i)
        assert len(g.samples()) == 8
        assert g.samples()[-1] == (99, 99.0)

    def test_histogram_buckets_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 50.0):
            h.observe(v)
        # le-0.1 gets 0.05 and the boundary value 0.1 itself.
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative() == [2, 3, 4, 5]
        assert h.count == 5

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", (0.1, 1.0))
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("lat", (0.2, 1.0))

    def test_unsorted_bounds_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", (1.0, 0.5))


class TestSeriesRouting:
    def test_diagnostic_series_feed_histograms(self):
        reg = MetricsRegistry()
        reg.observe_series("clipped_fraction", 0.4, step=0)
        key = ("clipped_fraction", ())
        assert key in reg._histograms
        assert reg._histograms[key].bounds == HISTOGRAM_SERIES["clipped_fraction"]
        assert reg.gauge("clipped_fraction").value == 0.4

    def test_seconds_series_feed_latency_histograms(self):
        reg = MetricsRegistry()
        reg.observe_series("runtime_job_seconds", 0.02, step=0)
        assert reg._histograms[("runtime_job_seconds", ())].bounds == (
            DEFAULT_LATENCY_BUCKETS
        )

    def test_plain_series_become_gauges_only(self):
        reg = MetricsRegistry()
        reg.observe_series("loss", 0.8, step=0)
        assert reg.gauge("loss").value == 0.8
        assert not reg._histograms


def _observe_stream(reg: MetricsRegistry, points):
    for step, value in points:
        reg.observe_series("clipped_fraction", value, step=step)
        reg.observe_series("runtime_job_seconds", value / 10.0, step=step)
        reg.inc("releases")


class TestMergeInvariance:
    #: One deterministic observation stream of 24 "jobs".
    POINTS = [(i, 0.05 * (i % 19)) for i in range(24)]

    def _merged_for_workers(self, workers: int) -> dict:
        """Partition the stream round-robin over ``workers`` registries
        (completion order deliberately scrambled), merge in job-index
        order, and return the deterministic projection."""
        shards = [MetricsRegistry() for _ in range(workers)]
        for i, point in enumerate(self.POINTS):
            _observe_stream(shards[i % workers], [point])
        parent = MetricsRegistry()
        # Job-index order == round-robin interleave of the shards'
        # states; the shards themselves are merged in shard order, which
        # preserves job order within each shard (exactly what
        # merge_shipped does for recorders).
        for shard in shards:
            parent.merge_state(shard.state_dict())
        return parent.deterministic_state()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_histogram_merge_is_worker_count_invariant(self, workers):
        assert self._merged_for_workers(workers) == self._merged_for_workers(1)

    def test_deterministic_projection_drops_wall_clock(self):
        state = self._merged_for_workers(1)
        names = {e["name"] for kind in state.values() for e in kind}
        assert "runtime_job_seconds" not in names
        assert "clipped_fraction" in names

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_recorder_mirror_matches_direct_observation(self, workers):
        """The recorder merge path (shipback) mirrors identically."""
        shards = []
        for w in range(workers):
            rec = MetricsRecorder()
            for i, (step, value) in enumerate(self.POINTS):
                if i % workers == w:
                    rec.record("clipped_fraction", value, step=step)
                    rec.increment("releases")
            shards.append(rec.state_dict())
        parent_rec = MetricsRecorder()
        reg = MetricsRegistry()
        parent_rec.bind_registry(reg)
        for state in shards:
            parent_rec.merge_state(state)
        if workers == 1:
            direct = MetricsRegistry()
            for step, value in self.POINTS:
                direct.observe_series("clipped_fraction", value, step=step)
                direct.inc("releases")
            assert reg.deterministic_state() == direct.deterministic_state()
        # Histogram counts are permutation-invariant: identical for all
        # worker counts even though gauge window order may differ.
        hist = reg._histograms[("clipped_fraction", ())]
        assert hist.count == len(self.POINTS)
        assert reg.counter("releases").value == len(self.POINTS)


class TestThreadSafetyAndCollectors:
    def test_concurrent_increments_do_not_lose_counts(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")
                reg.observe_series("clipped_fraction", 0.5, step=0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 4000
        assert reg._histograms[("clipped_fraction", ())].count == 4000

    def test_collectors_run_at_collect_time(self):
        reg = MetricsRegistry()
        calls = []
        reg.register_collector(lambda r: (calls.append(1), r.set_gauge("live", 7.0)))
        snapshot = reg.collect()
        assert calls == [1]
        assert any(g["name"] == "live" and g["value"] == 7.0 for g in snapshot["gauges"])

    def test_state_dict_round_trip(self):
        reg = MetricsRegistry()
        _observe_stream(reg, [(0, 0.2), (1, 0.6)])
        clone = MetricsRegistry()
        clone.load_state_dict(reg.state_dict())
        assert clone.state_dict() == reg.state_dict()
