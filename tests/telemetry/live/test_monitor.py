"""``repro monitor``: pure-frame rendering and both CLI source modes."""

from __future__ import annotations

import pytest

from repro.service import BudgetServer, JobSpec
from repro.telemetry.live import JsonlTimeSeries
from repro.telemetry.live.monitor import main as monitor_main
from repro.telemetry.live.monitor import render_monitor


def snapshot_fixture() -> dict:
    return {
        "service": {"seq": 42, "jobs": {"done": 3}},
        "metrics": {
            "counters": [
                {"name": "service_jobs_admitted", "labels": {}, "value": 4.0},
                {"name": "service_jobs_done", "labels": {}, "value": 3.0},
            ],
            "gauges": [
                {
                    "name": "service_tenant_epsilon_spent",
                    "labels": {"tenant": "alice"},
                    "value": 1.25,
                    "step": 42,
                    "window": [[40, 1.0], [41, 1.1], [42, 1.25]],
                },
                {
                    "name": "service_tenant_epsilon_remaining",
                    "labels": {"tenant": "alice"},
                    "value": 8.75,
                    "step": 42,
                    "window": [[42, 8.75]],
                },
                {
                    "name": "service_phase_seconds",
                    "labels": {"phase": "dispatch"},
                    "value": 0.5,
                    "step": 42,
                    "window": [[42, 0.5]],
                },
            ],
            "histograms": [],
        },
        "alerts": {"active": [], "fired_total": 0, "rules": []},
    }


class TestRenderMonitor:
    def test_quiet_frame(self):
        frame = render_monitor(snapshot_fixture())
        assert "seq 42" in frame
        assert "admitted 4" in frame and "done 3" in frame
        assert "alice" in frame
        assert "1.2500" in frame and "8.7500" in frame
        assert "dispatch" in frame
        assert "alerts: none firing" in frame

    def test_firing_frame(self):
        snapshot = snapshot_fixture()
        snapshot["alerts"]["active"] = [
            {
                "rule": "epsilon_burn_rate[tenant=alice]",
                "severity": "critical",
                "value": 1.25,
                "threshold": 2.0,
                "projected": 3.4,
            }
        ]
        frame = render_monitor(snapshot)
        assert "FIRING ALERTS (1)" in frame
        assert "epsilon_burn_rate[tenant=alice]" in frame
        assert "critical" in frame
        assert "projected=3.4" in frame

    def test_empty_snapshot_renders(self):
        frame = render_monitor({})
        assert frame.startswith("repro monitor")
        assert "alerts: none firing" in frame

    def test_sparkline_tracks_trajectory(self):
        frame = render_monitor(snapshot_fixture())
        row = next(l for l in frame.splitlines() if "alice" in l)
        assert any(ch in row for ch in "▁▂▃▄▅▆▇█")


class TestCliSources:
    def test_jsonl_once(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        JsonlTimeSeries(path).append(snapshot_fixture())
        rc = monitor_main(["--jsonl", str(path), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seq 42" in out

    def test_jsonl_missing_file_fails_once(self, tmp_path, capsys):
        rc = monitor_main(["--jsonl", str(tmp_path / "absent.jsonl"), "--once"])
        assert rc == 1
        assert "cannot read snapshot" in capsys.readouterr().err

    def test_endpoint_once_against_live_server(self, capsys):
        server = BudgetServer(metrics_port=0)
        try:
            server.add_tenant("alice", epsilon_budget=50.0)
            server.submit(
                JobSpec(
                    tenant="alice", sigma=1.1, sample_rate=0.01,
                    steps=100, dim=8, seed=0,
                ),
                job_id="a0",
            )
            server.run_until_idle()
            rc = monitor_main(
                ["--endpoint", server.metrics_address, "--once"]
            )
        finally:
            server.shutdown()
        assert rc == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert "alerts: none firing" in out

    def test_source_is_required(self, capsys):
        with pytest.raises(SystemExit):
            monitor_main(["--once"])
