"""Alert surfacing in reports: alerts sections, ``--alerts-only``, and
per-tenant burn-rate in the budget report."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main, run_report
from repro.privacy import RdpAccountant, ReleaseLedger
from repro.service import BudgetServer, JobSpec, build_budget_report
from repro.service.report import burn_rate
from repro.telemetry import (
    MetricsRecorder,
    build_report,
    export_trace,
    load_run_bundles,
    render_report,
)
from repro.telemetry.report import alerts_from_ledger


def _export_with_alert(path):
    """One exported run whose ledger carries a fired alert annotation."""
    recorder = MetricsRecorder()
    ledger = ReleaseLedger()
    accountant = RdpAccountant()
    for i in range(2):
        recorder.start_step(i)
        recorder.record("clipped_fraction", 0.99)
        accountant.step(1.0, 0.1)
        ledger.record_release(
            mechanism="gaussian", sigma=1.0, sensitivity=0.1,
            sample_rate=0.1, accountant=accountant,
        )
        recorder.end_step()
    ledger.record_annotation(
        kind="alert",
        accountant=accountant,
        meta={
            "alert": "clip_saturation",
            "kind": "clip_saturation",
            "severity": "warning",
            "value": 0.99,
            "threshold": 0.95,
        },
    )
    export_trace(path, recorder, run="demo", ledger=ledger)


class TestAlertsFromLedger:
    def test_extracts_alert_annotations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_with_alert(path)
        bundle = load_run_bundles(path)["demo"]
        alerts = alerts_from_ledger(bundle.ledger)
        assert len(alerts) == 1
        assert alerts[0]["alert"] == "clip_saturation"
        assert alerts[0]["value"] == pytest.approx(0.99)
        # ε at the time the alert fired rides the annotation record.
        assert alerts[0]["epsilon_at_alert"] > 0

    def test_empty_for_quiet_ledger(self):
        ledger = ReleaseLedger()
        assert alerts_from_ledger(ledger) == []


class TestReportAlertSections:
    def test_markdown_report_includes_alerts_table(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_with_alert(path)
        text = run_report(str(path))
        assert "clip_saturation" in text
        assert "| alert |" in text

    def test_alerts_only_markdown(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_with_alert(path)
        text = run_report(str(path), alerts_only=True)
        assert "# Run report (alerts)" in text
        assert "clip_saturation" in text
        # Full-report sections are filtered out.
        assert "Counters" not in text

    def test_alerts_only_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _export_with_alert(path)
        payload = json.loads(run_report(str(path), fmt="json", alerts_only=True))
        assert list(payload["runs"]) == ["demo"]
        run = payload["runs"]["demo"]
        assert run["alerts"][0]["alert"] == "clip_saturation"
        assert set(run) == {"alerts"}

    def test_cli_flag(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _export_with_alert(path)
        assert main(["report", str(path), "--alerts-only"]) == 0
        out = capsys.readouterr().out
        assert "# Run report (alerts)" in out

    def test_quiet_run_has_empty_alerts(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.record("loss", 1.0)
        path = tmp_path / "plain.jsonl"
        export_trace(path, recorder, run="plain")
        report = build_report(load_run_bundles(path))
        assert report["runs"]["plain"]["alerts"] == []
        text = render_report(report, alerts_only=True)
        assert "# Run report (alerts)" in text


class TestBurnRate:
    def test_secant_slope(self):
        trajectory = [(100, 1.0), (200, 1.5), (300, 2.0)]
        assert burn_rate(trajectory) == pytest.approx(0.005)

    def test_short_or_flat_trajectories(self):
        assert burn_rate([]) is None
        assert burn_rate([(100, 1.0)]) is None
        assert burn_rate([(100, 1.0), (100, 2.0)]) is None

    def test_windowing_uses_tail(self):
        # Early slow spend, late fast spend: the window sees the tail.
        trajectory = [(i * 100, 0.001 * i) for i in range(20)]
        trajectory += [(2000 + i * 100, 0.019 + 0.1 * (i + 1)) for i in range(8)]
        rate = burn_rate(trajectory, window=8)
        assert rate == pytest.approx(0.001, rel=0.2)

    def test_budget_report_carries_burn_rate(self):
        server = BudgetServer()
        server.add_tenant("alice", epsilon_budget=50.0)
        for i in range(3):
            server.submit(
                JobSpec(
                    tenant="alice", sigma=1.1, sample_rate=0.01,
                    steps=100, dim=8, seed=i,
                ),
                job_id=f"a{i}",
            )
        server.run_until_idle()
        report = build_budget_report(server)
        section = report["tenants"]["alice"]
        assert section["burn_rate"] is not None and section["burn_rate"] > 0
        assert section["steps_to_exhaustion"] > 0
        assert section["alerts"] == []
        server.shutdown()
