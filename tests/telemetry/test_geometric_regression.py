"""Geometric regression test (paper Fig. 1 / Theorem 2).

At equal privacy budget, GeoDP's released gradients must stay closer in
*direction* to the true averaged gradient than DP-SGD's.  The telemetry
subsystem records the angular deviation of every release, so the paper's
central geometric claim becomes a fixed-seed regression test: if a change
to the optimizers or the noise calibration erodes GeoDP's directional
advantage, the mean recorded angular deviation flips and this test fails.
"""

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.experiments import run_trace
from repro.models import build_logistic_regression
from repro.telemetry import MetricsRecorder, load_traces


def _mean_angular_deviation(optimizer) -> float:
    data = make_mnist_like(300, rng=0, size=10)
    train, _ = train_test_split(data, rng=0)
    recorder = MetricsRecorder()
    model = build_logistic_regression((1, 10, 10), rng=0)
    Trainer(model, optimizer, train, batch_size=64, rng=7, telemetry=recorder).train(30)
    values = recorder.values("angular_deviation")
    assert len(values) == 30
    return float(np.mean(values))


class TestAngularDeviation:
    def test_geodp_beats_dpsgd_at_equal_budget(self):
        """GeoDP's mean angular deviation must not exceed DP-SGD's.

        Same clipping threshold, noise multiplier, batches and noise seed;
        only the perturbation geometry differs.  The observed margin is
        large (roughly 0.07 rad vs 1.3 rad on this workload), so the
        factor-of-two guard below leaves headroom for numeric drift while
        still catching any real regression.
        """
        dp = _mean_angular_deviation(DpSgdOptimizer(1.0, 0.1, 1.0, rng=3))
        geo = _mean_angular_deviation(
            GeoDpSgdOptimizer(
                1.0, 0.1, 1.0, beta=0.1, rng=3, sensitivity_mode="per_angle"
            )
        )
        assert geo <= dp
        assert geo <= 0.5 * dp

    def test_dpsgd_deviation_grows_with_sigma(self):
        """More noise at fixed sensitivity means worse direction preservation."""
        quiet = _mean_angular_deviation(DpSgdOptimizer(1.0, 0.1, 0.25, rng=3))
        loud = _mean_angular_deviation(DpSgdOptimizer(1.0, 0.1, 4.0, rng=3))
        assert quiet < loud


@pytest.mark.slow
class TestTraceExperiment:
    def test_smoke_trace_round_trips_and_preserves_verdict(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result = run_trace("smoke", rng=0, telemetry=path)
        recorders = result["recorders"]

        dp = np.mean(recorders["dpsgd"].values("angular_deviation"))
        geo = np.mean(recorders["geodp"].values("angular_deviation"))
        assert geo <= dp

        loaded = load_traces(path)
        assert sorted(loaded) == ["dpsgd", "geodp"]
        for run, recorder in recorders.items():
            assert loaded[run].series == recorder.series
            assert loaded[run].counters == recorder.counters
            assert [e.to_dict() for e in loaded[run].events] == [
                e.to_dict() for e in recorder.events
            ]
