"""Tests for JSONL trace export/load and the underlying JSONL helpers."""

import json

import pytest

from repro.telemetry import MetricsRecorder, export_trace, load_trace, load_traces
from repro.utils.serialization import load_jsonl, save_jsonl


def make_recorder(offset: float = 0.0) -> MetricsRecorder:
    rec = MetricsRecorder()
    for i in range(1, 4):
        rec.start_step(i)
        rec.record("loss", offset + 1.0 / i)
        with rec.span("clip"):
            pass
        rec.end_step()
    rec.record("global", offset + 42.0, step=99)
    rec.increment("releases", 3)
    return rec


def assert_recorders_equal(a: MetricsRecorder, b: MetricsRecorder) -> None:
    assert [e.to_dict() for e in a.events] == [e.to_dict() for e in b.events]
    assert a.series == b.series
    assert a.counters == b.counters
    assert a.timers == b.timers


class TestJsonlHelpers:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}]
        save_jsonl(path, records)
        assert load_jsonl(path) == records

    def test_append(self, tmp_path):
        path = tmp_path / "x.jsonl"
        save_jsonl(path, [{"a": 1}])
        save_jsonl(path, [{"b": 2}], append=True)
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\n\n{"b":2}\n')
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_invalid_line_reports_position(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"a":1}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_jsonl(path)


class TestTraceRoundTrip:
    def test_single_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = make_recorder()
        export_trace(path, rec)
        assert_recorders_equal(load_trace(path), rec)

    def test_multi_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        a, b = make_recorder(), make_recorder(offset=10.0)
        export_trace(path, a, run="dpsgd")
        export_trace(path, b, run="geodp", append=True)
        loaded = load_traces(path)
        assert sorted(loaded) == ["dpsgd", "geodp"]
        assert_recorders_equal(loaded["dpsgd"], a)
        assert_recorders_equal(loaded["geodp"], b)

    def test_load_trace_selects_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(path, make_recorder(), run="a")
        export_trace(path, make_recorder(offset=1.0), run="b", append=True)
        assert load_trace(path, run="b").values("global") == [43.0]

    def test_load_trace_ambiguous_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(path, make_recorder(), run="a")
        export_trace(path, make_recorder(), run="b", append=True)
        with pytest.raises(ValueError, match="pass run="):
            load_trace(path)

    def test_load_trace_missing_run_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(path, make_recorder(), run="a")
        with pytest.raises(ValueError, match="'b'"):
            load_trace(path, run="b")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no trace blocks"):
            load_trace(path)


class TestTraceFormatErrors:
    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "meta", "version": 99, "run": "x"}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_traces(path)

    def test_duplicate_run_label(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(path, make_recorder(), run="a")
        with pytest.raises(ValueError, match="duplicate"):
            export_trace(path, make_recorder(), run="a", append=True)
            load_traces(path)

    def test_line_before_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "step", "run": "x", "iteration": 1}) + "\n")
        with pytest.raises(ValueError, match="before meta"):
            load_traces(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(path, MetricsRecorder(), run="x")
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "mystery", "run": "x"}) + "\n")
        with pytest.raises(ValueError, match="unknown trace line kind"):
            load_traces(path)
