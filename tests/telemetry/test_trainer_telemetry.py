"""Integration tests: trainer + optimizers emitting telemetry."""

import numpy as np
import pytest

from repro.core import (
    DpSgdOptimizer,
    GeoDpAdamOptimizer,
    GeoDpSgdOptimizer,
    SelectiveUpdateRelease,
    SgdOptimizer,
    Trainer,
)
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.telemetry import MetricsRecorder, clip_diagnostics, release_diagnostics


@pytest.fixture(scope="module")
def small_data():
    data = make_mnist_like(300, rng=0, size=12)
    return train_test_split(data, rng=0)


def lr_model():
    return build_logistic_regression((1, 12, 12), rng=0)


DP_METRICS = {
    "loss",
    "pre_clip_norm_mean",
    "pre_clip_norm_max",
    "clipped_fraction",
    "post_clip_norm",
    "noise_norm",
    "noise_to_signal",
    "cos_similarity",
    "angular_deviation",
    "sensitivity",
    "sigma",
}


class TestDiagnostics:
    def test_clip_diagnostics(self):
        grads = np.array([[3.0, 4.0], [0.3, 0.4]])  # norms 5 and 0.5
        stats = clip_diagnostics(grads, 1.0)
        assert stats["pre_clip_norm_mean"] == pytest.approx(2.75)
        assert stats["pre_clip_norm_max"] == pytest.approx(5.0)
        assert stats["clipped_fraction"] == pytest.approx(0.5)

    def test_clip_diagnostics_empty_batch(self):
        stats = clip_diagnostics(np.zeros((0, 4)), 1.0)
        assert stats == {
            "pre_clip_norm_mean": 0.0,
            "pre_clip_norm_max": 0.0,
            "clipped_fraction": 0.0,
        }

    def test_release_diagnostics_orthogonal_noise(self):
        clean = np.array([1.0, 0.0])
        noisy = np.array([1.0, 1.0])
        stats = release_diagnostics(clean, noisy)
        assert stats["post_clip_norm"] == pytest.approx(1.0)
        assert stats["noise_norm"] == pytest.approx(1.0)
        assert stats["noise_to_signal"] == pytest.approx(1.0)
        assert stats["angular_deviation"] == pytest.approx(np.pi / 4)

    def test_release_diagnostics_zero_signal(self):
        stats = release_diagnostics(np.zeros(3), np.ones(3))
        assert "noise_to_signal" not in stats
        assert "angular_deviation" not in stats

    def test_release_cosine_matches_geometry_module(self):
        """The hot-path inline cosine must agree with the reference one."""
        from repro.geometry.metrics import cosine_similarity

        rng = np.random.default_rng(0)
        for _ in range(20):
            clean = rng.normal(size=40)
            noisy = clean + rng.normal(scale=rng.uniform(0.01, 10.0), size=40)
            stats = release_diagnostics(clean, noisy)
            expected = float(cosine_similarity(clean[None, :], noisy[None, :])[0])
            assert stats["cos_similarity"] == pytest.approx(expected, abs=1e-12)


class TestTrainerTelemetry:
    def test_dpsgd_step_traces(self, small_data):
        train, test = small_data
        rec = MetricsRecorder()
        opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
        history = Trainer(
            lr_model(), opt, train, test_data=test, batch_size=64, rng=1, telemetry=rec
        ).train(8, eval_every=4)
        assert len(rec.events) == 8
        assert [e.iteration for e in rec.events] == list(range(1, 9))
        assert DP_METRICS <= set(rec.events[0].metrics)
        assert {"sample", "forward_backward", "clip", "noise", "step"} <= set(
            rec.events[0].timings
        )
        assert rec.counters["iterations"] == 8
        assert rec.counters["releases"] == 8
        assert rec.values("loss") == history.losses
        assert rec.values("test_accuracy") == [a for _, a in history.test_accuracy]

    def test_geodp_records_noise_split(self, small_data):
        train, _ = small_data
        rec = MetricsRecorder()
        opt = GeoDpSgdOptimizer(
            1.0, 0.1, 1.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
        )
        Trainer(lr_model(), opt, train, batch_size=64, rng=1, telemetry=rec).train(4)
        metrics = rec.events[0].metrics
        assert {
            "geodp_beta",
            "geodp_magnitude_noise_scale",
            "geodp_direction_noise_scale",
        } <= set(metrics)
        assert metrics["geodp_beta"] == pytest.approx(0.1)
        assert metrics["geodp_magnitude_noise_scale"] == pytest.approx(0.1 * 1.0 / 64)

    def test_geodp_adam_records(self, small_data):
        train, _ = small_data
        rec = MetricsRecorder()
        opt = GeoDpAdamOptimizer(0.05, 0.1, 1.0, beta=0.1, rng=2)
        Trainer(lr_model(), opt, train, batch_size=64, rng=1, telemetry=rec).train(3)
        assert len(rec.events) == 3
        assert "angular_deviation" in rec.events[0].metrics
        assert "geodp_direction_noise_scale" in rec.events[0].metrics

    def test_non_private_optimizer_records_loss_and_timing(self, small_data):
        train, _ = small_data
        rec = MetricsRecorder()
        Trainer(
            lr_model(), SgdOptimizer(1.0), train, batch_size=64, rng=1, telemetry=rec
        ).train(3)
        assert len(rec.events) == 3
        assert "loss" in rec.events[0].metrics
        assert "noise_to_signal" not in rec.events[0].metrics
        assert {"sample", "forward_backward", "step"} <= set(rec.events[0].timings)

    def test_telemetry_does_not_change_training(self, small_data):
        """The recorder observes; it must never consume randomness."""
        train, _ = small_data

        def run(telemetry):
            opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=5)
            model = lr_model()
            Trainer(
                model, opt, train, batch_size=32, rng=6, telemetry=telemetry
            ).train(5)
            return model.get_params()

        assert np.allclose(run(None), run(MetricsRecorder()))

    def test_trainer_attaches_recorder_to_optimizer(self, small_data):
        train, _ = small_data
        rec = MetricsRecorder()
        opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
        assert opt.recorder is None
        Trainer(lr_model(), opt, train, batch_size=32, rng=1, telemetry=rec)
        assert opt.recorder is rec

    def test_trainer_keeps_existing_optimizer_recorder(self, small_data):
        train, _ = small_data
        opt_rec, trainer_rec = MetricsRecorder(), MetricsRecorder()
        opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2, recorder=opt_rec)
        Trainer(
            lr_model(), opt, train, batch_size=32, rng=1, telemetry=trainer_rec
        ).train(2)
        assert opt.recorder is opt_rec
        # Release metrics landed in the optimizer's own recorder...
        assert len(opt_rec.values("noise_to_signal")) == 2
        # ...while the trainer's recorder still traced steps and loss.
        assert len(trainer_rec.events) == 2
        assert "noise_to_signal" not in trainer_rec.events[0].metrics

    def test_optimizer_recorder_without_trainer_telemetry(self, small_data):
        """An optimizer-only recorder gets flat series but no step events."""
        train, _ = small_data
        rec = MetricsRecorder()
        opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2, recorder=rec)
        Trainer(lr_model(), opt, train, batch_size=32, rng=1).train(3)
        assert rec.events == []
        assert len(rec.values("angular_deviation")) == 3

    def test_sur_telemetry(self, small_data):
        train, _ = small_data
        rec = MetricsRecorder()
        opt = DpSgdOptimizer(5.0, 0.1, 50.0, rng=2)
        Trainer(
            lr_model(),
            opt,
            train,
            batch_size=32,
            rng=1,
            sur=SelectiveUpdateRelease(threshold=0.0),
            telemetry=rec,
        ).train(10)
        accepted = rec.counters.get("sur_accepted", 0)
        rejected = rec.counters.get("sur_rejected", 0)
        assert accepted + rejected == 10
        assert rec.values("sur_accepted").count(1.0) == accepted
