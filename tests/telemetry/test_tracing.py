"""Span tracer tests: tree structure, granularity gating, serialisation,
deterministic merging, and Chrome trace-event export validity."""

import json

import pytest

from repro.telemetry import MetricsRecorder, RunBundle, Tracer, export_trace
from repro.telemetry.export import load_run_bundles
from repro.telemetry.tracing import SPAN_LEVELS, Span, joint_span, maybe_span


def _sample_tracer() -> Tracer:
    tracer = Tracer(granularity="phase")
    with tracer.span("run", level="run"):
        with tracer.span("lot", level="lot") as lot:
            lot.meta["iteration"] = 0.0
            with tracer.span("clip"):
                pass
            with tracer.span("noise"):
                pass
        with tracer.span("lot", level="lot"):
            with tracer.span("clip"):
                pass
    return tracer


class TestSpanTree:
    def test_nesting_builds_parent_links(self):
        tracer = _sample_tracer()
        names = [s.name for s in tracer.spans]
        assert names == ["run", "lot", "clip", "noise", "lot", "clip"]
        run, lot1, clip1, noise, lot2, clip2 = tracer.spans
        assert run.parent is None and run.depth == 0
        assert lot1.parent == 0 and lot1.depth == 1
        assert clip1.parent == 1 and noise.parent == 1 and clip1.depth == 2
        assert lot2.parent == 0 and clip2.parent == 4

    def test_durations_nest(self):
        tracer = _sample_tracer()
        run, lot1 = tracer.spans[0], tracer.spans[1]
        assert run.duration >= lot1.duration >= tracer.spans[2].duration >= 0.0
        assert lot1.start >= run.start

    def test_granularity_gates_deeper_spans(self):
        tracer = Tracer(granularity="lot")
        with tracer.span("run", level="run"):
            with tracer.span("lot", level="lot"):
                with tracer.span("clip") as phase:
                    assert phase is None
        assert [s.name for s in tracer.spans] == ["run", "lot"]
        assert tracer.enabled("lot") and not tracer.enabled("phase")

    def test_granularity_run_records_only_run(self):
        tracer = Tracer(granularity="run")
        with tracer.span("run", level="run"):
            with tracer.span("epoch", level="epoch") as epoch:
                assert epoch is None
        assert len(tracer) == 1

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            Tracer(granularity="nanosecond")

    def test_phase_totals(self):
        tracer = _sample_tracer()
        totals = tracer.phase_totals(level="phase")
        assert set(totals) == {"clip", "noise"}
        assert totals["clip"] == pytest.approx(
            sum(s.duration for s in tracer.spans if s.name == "clip")
        )
        assert set(tracer.phase_totals()) == {"run", "lot", "clip", "noise"}

    def test_levels_are_the_documented_hierarchy(self):
        assert SPAN_LEVELS == ("run", "epoch", "lot", "phase")


class TestMemoryTracing:
    def test_peak_bytes_recorded_and_child_propagates_to_parent(self):
        tracer = Tracer(trace_memory=True)
        try:
            with tracer.span("outer", level="lot"):
                with tracer.span("inner"):
                    blob = bytearray(2_000_000)
                    del blob
            outer, inner = tracer.spans
            assert inner.peak_bytes is not None and inner.peak_bytes >= 2_000_000
            assert outer.peak_bytes >= inner.peak_bytes
        finally:
            tracer.close()

    def test_memory_off_leaves_peaks_none(self):
        tracer = _sample_tracer()
        assert all(s.peak_bytes is None for s in tracer.spans)


class TestSerialisation:
    def test_state_round_trip(self):
        tracer = _sample_tracer()
        state = tracer.state_dict()
        clone = Tracer()
        clone.load_state_dict(state)
        assert clone.granularity == tracer.granularity
        assert [s.to_dict() for s in clone.spans] == [
            s.to_dict() for s in tracer.spans
        ]

    def test_state_dict_refuses_open_span(self):
        tracer = Tracer()
        cm = tracer.span("run", level="run")
        cm.__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            tracer.state_dict()
        cm.__exit__(None, None, None)
        assert tracer.state_dict()["spans"][0]["name"] == "run"

    def test_span_dict_round_trip_preserves_meta(self):
        span = Span("lot", "lot", 1.5, duration=0.25, parent=3, depth=2,
                    peak_bytes=77, track="w1", meta={"iteration": 9.0})
        assert Span.from_dict(span.to_dict()) == span

    def test_merge_state_rebases_parents_and_relabels_track(self):
        parent = _sample_tracer()
        offset = len(parent.spans)
        worker = _sample_tracer()
        parent.merge_state(worker.state_dict(), track="cell-a")
        merged = parent.spans[offset:]
        assert [s.track for s in merged] == ["cell-a"] * offset
        assert merged[0].parent is None
        assert merged[1].parent == offset  # lot -> merged run
        assert merged[2].parent == offset + 1  # clip -> merged lot

    def test_export_round_trip_through_run_bundles(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.record("loss", 1.0)
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        export_trace(path, recorder, run="r", tracer=tracer)
        bundles = load_run_bundles(path)
        assert isinstance(bundles["r"], RunBundle)
        loaded = bundles["r"].tracer
        assert loaded.granularity == tracer.granularity
        assert [s.to_dict() for s in loaded.spans] == [
            s.to_dict() for s in tracer.spans
        ]
        assert bundles["r"].recorder.values("loss") == [1.0]


class TestChromeTrace:
    def test_chrome_trace_is_valid_trace_event_json(self, tmp_path):
        tracer = _sample_tracer()
        tracer.merge_state(_sample_tracer().state_dict(), track="worker-1")
        payload = tracer.chrome_trace()
        # Must survive strict JSON serialisation (what the file format is).
        parsed = json.loads(json.dumps(payload))
        events = parsed["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "M"}
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [m["args"]["name"] for m in metadata] == ["main", "worker-1"]
        assert len(complete) == len(tracer.spans)
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
            assert event["pid"] == 0 and event["tid"] in (0, 1)
            assert event["cat"] in SPAN_LEVELS
        # main track is tid 0, merged worker lane tid 1
        main_tids = {e["tid"] for e in complete[: len(_sample_tracer().spans)]}
        assert main_tids == {0}

    def test_save_chrome_trace_writes_loadable_file(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.json"
        tracer.save_chrome_trace(path)
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"
        assert len(parsed["traceEvents"]) == len(tracer.spans) + 1


class TestHelpers:
    def test_maybe_span_none_is_noop(self):
        with maybe_span(None, "clip") as span:
            assert span is None

    def test_joint_span_feeds_both_sinks(self):
        recorder, tracer = MetricsRecorder(), Tracer()
        with joint_span(recorder, tracer, "clip"):
            pass
        assert "clip" in recorder.timers
        assert [s.name for s in tracer.spans] == ["clip"]

    def test_joint_span_single_sink_and_disabled(self):
        recorder = MetricsRecorder()
        with joint_span(recorder, None, "noise"):
            pass
        assert "noise" in recorder.timers
        tracer = Tracer()
        with joint_span(None, tracer, "noise"):
            pass
        assert [s.name for s in tracer.spans] == ["noise"]
        with joint_span(None, None, "noise"):  # shared nullcontext
            pass
