"""End-to-end integration tests: full private training pipelines.

These exercise the library exactly as a downstream user would: data ->
model -> optimizer (+ accountant, techniques) -> trainer -> evaluation.
"""

import numpy as np
import pytest

from repro import (
    DpAdamOptimizer,
    DpSgdOptimizer,
    GeoDpSgdOptimizer,
    RdpAccountant,
    SgdOptimizer,
    Trainer,
)
from repro.core import SelectiveUpdateRelease
from repro.data import make_cifar_like, make_mnist_like, train_test_split
from repro.models import build_cnn, build_logistic_regression, build_resnet


@pytest.fixture(scope="module")
def mnist_split():
    return train_test_split(make_mnist_like(600, rng=0, size=16), rng=0)


class TestLogisticRegressionPipelines:
    def test_nonprivate_baseline_learns(self, mnist_split):
        train, test = mnist_split
        model = build_logistic_regression((1, 16, 16), rng=0)
        trainer = Trainer(model, SgdOptimizer(1.0), train, test_data=test, batch_size=64, rng=1)
        history = trainer.train(150, eval_every=150)
        assert history.final_accuracy > 0.6

    def test_dpsgd_with_accounting(self, mnist_split):
        train, test = mnist_split
        accountant = RdpAccountant()
        sample_rate = 64 / len(train)
        opt = DpSgdOptimizer(
            1.0, 0.1, 1.0, rng=2, accountant=accountant, sample_rate=sample_rate
        )
        model = build_logistic_regression((1, 16, 16), rng=0)
        trainer = Trainer(model, opt, train, test_data=test, batch_size=64, rng=3)
        history = trainer.train(60, eval_every=60)
        spent = accountant.get_privacy_spent(delta=1e-5)
        assert spent.epsilon > 0
        assert accountant.total_steps == 60
        # C = 0.1 caps the update size, so 60 iterations only gets partway;
        # the point of this test is the accounting, not peak accuracy.
        assert history.final_accuracy > 0.15

    def test_geodp_beats_dp_under_heavy_noise(self, mnist_split):
        """The paper's headline training claim, at smoke scale: with a tuned
        beta, GeoDP reaches better accuracy than DP-SGD at the same sigma."""
        train, test = mnist_split
        sigma, iters = 10.0, 60

        def run(optimizer):
            model = build_logistic_regression((1, 16, 16), rng=0)
            trainer = Trainer(model, optimizer, train, test_data=test, batch_size=128, rng=5)
            return trainer.train(iters, eval_every=iters).final_accuracy

        acc_dp = run(DpSgdOptimizer(1.0, 0.1, sigma, rng=4))
        acc_geo = run(
            GeoDpSgdOptimizer(
                1.0, 0.1, sigma, beta=0.1, rng=4, sensitivity_mode="per_angle"
            )
        )
        acc_geo_bad = run(
            GeoDpSgdOptimizer(
                1.0, 0.1, sigma, beta=1.0, rng=4, sensitivity_mode="per_angle"
            )
        )
        assert acc_geo >= acc_dp - 0.02  # GeoDP at least matches DP
        assert acc_geo > acc_geo_bad  # bad beta is worse (Table II shape)

    def test_dp_adam_pipeline(self, mnist_split):
        train, test = mnist_split
        opt = DpAdamOptimizer(0.05, 0.1, 1.0, rng=6)
        model = build_logistic_regression((1, 16, 16), rng=0)
        trainer = Trainer(model, opt, train, test_data=test, batch_size=64, rng=7)
        assert trainer.train(40, eval_every=40).final_accuracy > 0.3


class TestCnnPipeline:
    def test_geodp_cnn_trains(self):
        data = make_mnist_like(300, rng=1, size=16)
        train, test = train_test_split(data, rng=1)
        model = build_cnn((1, 16, 16), channels=(2, 4), rng=0)
        opt = GeoDpSgdOptimizer(
            2.0, 0.1, 1.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
        )
        trainer = Trainer(model, opt, train, test_data=test, batch_size=32, rng=3)
        history = trainer.train(120, eval_every=120)
        assert history.final_accuracy > 0.14  # above 10% chance

    def test_sur_composition_runs_on_cnn(self):
        data = make_mnist_like(200, rng=2, size=16)
        train, _ = train_test_split(data, rng=2)
        model = build_cnn((1, 16, 16), channels=(2, 4), rng=0)
        opt = DpSgdOptimizer(1.0, 0.1, 5.0, rng=3)
        trainer = Trainer(
            model, opt, train, batch_size=32, rng=4, sur=SelectiveUpdateRelease()
        )
        history = trainer.train(10)
        assert history.sur_acceptance_rate is not None


class TestResnetPipeline:
    def test_geodp_resnet_trains(self):
        data = make_cifar_like(200, rng=3, size=16)
        train, test = train_test_split(data, rng=3)
        model = build_resnet((3, 16, 16), base_channels=2, rng=0)
        opt = GeoDpSgdOptimizer(
            0.5, 0.1, 0.1, beta=0.1, rng=4, sensitivity_mode="per_angle"
        )
        trainer = Trainer(model, opt, train, test_data=test, batch_size=32, rng=5)
        history = trainer.train(15, eval_every=15)
        assert 0.0 <= history.final_accuracy <= 1.0
        assert np.isfinite(history.losses).all()


class TestPrivacyInvariants:
    def test_same_epsilon_dp_vs_geodp_full_pipeline(self, mnist_split):
        """Theorem 5: the Gaussian part of GeoDP's guarantee matches DP-SGD."""
        train, _ = mnist_split
        sample_rate = 32 / len(train)

        def run(optimizer_cls, **kwargs):
            acc = RdpAccountant()
            opt = optimizer_cls(
                1.0, 0.1, 2.0, rng=1, accountant=acc, sample_rate=sample_rate, **kwargs
            )
            model = build_logistic_regression((1, 16, 16), rng=0)
            Trainer(model, opt, train, batch_size=32, rng=2).train(10)
            return acc.get_epsilon(1e-5)

        assert run(DpSgdOptimizer) == pytest.approx(run(GeoDpSgdOptimizer, beta=0.5))
