"""Bit-identical resume tests: a run killed at iteration k and resumed from
its latest snapshot must match an uninterrupted run exactly — parameters,
losses, RNG streams and privacy spend, not merely approximately."""

import numpy as np
import pytest

from repro.checkpoint import (
    SnapshotError,
    capture_training_state,
    latest_snapshot,
    restore_training_state,
    save_snapshot,
    snapshot_path,
)
from repro.core import (
    DpSgdOptimizer,
    GeoDpSgdOptimizer,
    SelectiveUpdateRelease,
    SgdOptimizer,
    Trainer,
)
from repro.core.geodp_adam import GeoDpAdamOptimizer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.privacy.accountant import RdpAccountant
from repro.privacy.clipping import AdaptiveQuantileClipping
from repro.telemetry import MetricsRecorder

TOTAL = 14
CRASH_EVERY = 4  # snapshots at 4, 8, 12


@pytest.fixture(scope="module")
def small_data():
    data = make_mnist_like(240, rng=0, size=10)
    return train_test_split(data, rng=0)


def make_setup(kind, data):
    """Fresh (model, optimizer, accountant, trainer) with fixed seeds.

    Called once per simulated process: the resumed run reconstructs
    everything from scratch, exactly as a restarted job would.
    """
    train, test = data
    model = build_logistic_regression((1, 10, 10), rng=0)
    accountant = RdpAccountant()
    sample_rate = 32 / len(train)
    kwargs = {}
    if kind == "sgd_momentum":
        optimizer = SgdOptimizer(1.0, momentum=0.9)
        accountant = None
    elif kind == "dpsgd_momentum":
        optimizer = DpSgdOptimizer(
            1.0, 0.1, 1.0, rng=2, momentum=0.9,
            accountant=accountant, sample_rate=sample_rate,
        )
    elif kind == "dpsgd_adaptive_microbatch":
        clipping = AdaptiveQuantileClipping(0.1, noise_std=1.0, rng=7)
        optimizer = DpSgdOptimizer(
            1.0, clipping, 1.0, rng=2,
            accountant=accountant, sample_rate=sample_rate,
        )
        kwargs["microbatch_size"] = 8
    elif kind == "dpsgd_poisson":
        optimizer = DpSgdOptimizer(
            1.0, 0.1, 1.0, rng=2, momentum=0.5,
            accountant=accountant, sample_rate=sample_rate, lot_size=32,
        )
        kwargs["sampling"] = "poisson"
    elif kind == "geodp_momentum":
        optimizer = GeoDpSgdOptimizer(
            1.0, 0.1, 1.0, beta=0.1, rng=2, momentum=0.9,
            accountant=accountant, sample_rate=sample_rate,
        )
    elif kind == "geodp_adam":
        optimizer = GeoDpAdamOptimizer(
            0.1, 0.1, 1.0, beta=0.1, rng=2,
            accountant=accountant, sample_rate=sample_rate,
        )
    elif kind == "dpsgd_sur":
        optimizer = DpSgdOptimizer(
            2.0, 0.1, 5.0, rng=2, momentum=0.9,
            accountant=accountant, sample_rate=sample_rate,
        )
        kwargs["sur"] = SelectiveUpdateRelease(threshold=0.0, noise_std=0.05, rng=9)
    else:
        raise ValueError(kind)
    trainer = Trainer(
        model, optimizer, train, test_data=test, batch_size=32, rng=1,
        telemetry=MetricsRecorder(), **kwargs,
    )
    return model, optimizer, accountant, trainer


def assert_bit_identical(kind, data, tmp_path, interrupt_at):
    """Train uninterrupted; train again with a crash + resume; compare exactly."""
    model_a, opt_a, acc_a, trainer_a = make_setup(kind, data)
    history_a = trainer_a.train(TOTAL, eval_every=7)

    ckpt = tmp_path / kind
    _, _, _, trainer_b = make_setup(kind, data)
    trainer_b.train(
        interrupt_at, eval_every=7, checkpoint_every=CRASH_EVERY, checkpoint_dir=ckpt
    )

    model_c, opt_c, acc_c, trainer_c = make_setup(kind, data)
    history_c = trainer_c.train(
        TOTAL, eval_every=7, checkpoint_every=CRASH_EVERY, checkpoint_dir=ckpt
    )

    assert np.array_equal(model_c.get_params(), model_a.get_params())
    assert history_c.losses == history_a.losses
    assert history_c.test_accuracy == history_a.test_accuracy
    assert history_c.sur_acceptance_rate == history_a.sur_acceptance_rate
    assert trainer_c.rng.bit_generator.state == trainer_a.rng.bit_generator.state
    opt_rng = getattr(opt_c, "rng", None)
    if opt_rng is not None:
        assert opt_rng.bit_generator.state == opt_a.rng.bit_generator.state
    if acc_a is not None:
        assert acc_c.get_epsilon(1e-5) == acc_a.get_epsilon(1e-5)
        assert acc_c.history == acc_a.history


class TestResumeSmoke:
    """Fast tier-1 coverage: one plain-DP and one geometric configuration."""

    def test_dpsgd_momentum(self, small_data, tmp_path):
        assert_bit_identical("dpsgd_momentum", small_data, tmp_path, interrupt_at=9)

    def test_geodp_momentum(self, small_data, tmp_path):
        assert_bit_identical("geodp_momentum", small_data, tmp_path, interrupt_at=9)


@pytest.mark.slow
class TestResumeMatrix:
    """Every optimizer/technique combination resumes bit-identically."""

    @pytest.mark.parametrize(
        "kind",
        [
            "sgd_momentum",
            "dpsgd_momentum",
            "dpsgd_adaptive_microbatch",
            "dpsgd_poisson",
            "geodp_momentum",
            "geodp_adam",
            "dpsgd_sur",
        ],
    )
    @pytest.mark.parametrize("interrupt_at", [5, 13])
    def test_bit_identical(self, small_data, tmp_path, kind, interrupt_at):
        assert_bit_identical(kind, small_data, tmp_path, interrupt_at)


class TestCrashInjection:
    def test_exception_mid_run_then_resume(self, small_data, tmp_path):
        """A hard crash (exception escaping train) loses nothing past the
        last snapshot; the resumed run still matches uninterrupted exactly."""
        model_a, _, acc_a, trainer_a = make_setup("dpsgd_momentum", small_data)
        history_a = trainer_a.train(TOTAL)

        _, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        crash_at = 10
        original = trainer_b._per_sample_step
        calls = []

        def exploding_step(*args, **kwargs):
            if len(calls) >= crash_at:
                raise RuntimeError("simulated crash")
            calls.append(1)
            return original(*args, **kwargs)

        trainer_b._per_sample_step = exploding_step
        with pytest.raises(RuntimeError, match="simulated crash"):
            trainer_b.train(TOTAL, checkpoint_every=CRASH_EVERY, checkpoint_dir=tmp_path)

        model_c, _, acc_c, trainer_c = make_setup("dpsgd_momentum", small_data)
        history_c = trainer_c.train(
            TOTAL, checkpoint_every=CRASH_EVERY, checkpoint_dir=tmp_path
        )
        assert np.array_equal(model_c.get_params(), model_a.get_params())
        assert history_c.losses == history_a.losses
        assert acc_c.get_epsilon(1e-5) == acc_a.get_epsilon(1e-5)

    def test_truncated_latest_snapshot_falls_back(self, small_data, tmp_path):
        """A partial snapshot from a kill mid-write is skipped with a warning
        and the run resumes from the previous valid one."""
        model_a, _, _, trainer_a = make_setup("dpsgd_momentum", small_data)
        history_a = trainer_a.train(TOTAL)

        _, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        trainer_b.train(12, checkpoint_every=CRASH_EVERY, checkpoint_dir=tmp_path)
        newest = snapshot_path(tmp_path, 12)
        newest.write_bytes(newest.read_bytes()[:128])

        model_c, _, _, trainer_c = make_setup("dpsgd_momentum", small_data)
        with pytest.warns(UserWarning, match="skipping invalid snapshot"):
            history_c = trainer_c.train(
                TOTAL, checkpoint_every=CRASH_EVERY, checkpoint_dir=tmp_path
            )
        assert np.array_equal(model_c.get_params(), model_a.get_params())
        assert history_c.losses == history_a.losses


class TestResumeSemantics:
    def test_resume_false_ignores_snapshots(self, small_data, tmp_path):
        _, _, _, trainer_a = make_setup("dpsgd_momentum", small_data)
        trainer_a.train(8, checkpoint_every=4, checkpoint_dir=tmp_path)

        _, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        history = trainer_b.train(
            6, checkpoint_every=4, checkpoint_dir=tmp_path, resume=False
        )
        assert history.iterations == 6
        assert len(history.losses) == 6

    def test_resume_never_overshoots_requested_length(self, small_data, tmp_path):
        """Snapshots beyond num_iterations are ignored, so a shorter re-run
        still trains (prefix-identically) instead of returning instantly."""
        model_a, _, _, trainer_a = make_setup("dpsgd_momentum", small_data)
        history_a = trainer_a.train(12, checkpoint_every=4, checkpoint_dir=tmp_path)

        model_b, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        history_b = trainer_b.train(6, checkpoint_every=4, checkpoint_dir=tmp_path)
        assert history_b.iterations == 6
        assert history_b.losses == history_a.losses[:6]

    def test_resume_at_exact_completion_is_noop(self, small_data, tmp_path):
        model_a, _, _, trainer_a = make_setup("dpsgd_momentum", small_data)
        trainer_a.train(8, checkpoint_every=8, checkpoint_dir=tmp_path)
        params = model_a.get_params().copy()

        model_b, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        history = trainer_b.train(8, checkpoint_every=8, checkpoint_dir=tmp_path)
        assert np.array_equal(model_b.get_params(), params)
        assert history.iterations == 8

    def test_checkpoint_every_requires_dir(self, small_data):
        _, _, _, trainer = make_setup("dpsgd_momentum", small_data)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            trainer.train(4, checkpoint_every=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            trainer.train(4, checkpoint_every=-1)

    def test_telemetry_counters_survive_resume(self, small_data, tmp_path):
        _, _, _, trainer_a = make_setup("dpsgd_momentum", small_data)
        trainer_a.train(TOTAL)
        full_steps = len(trainer_a.telemetry.events)

        _, _, _, trainer_b = make_setup("dpsgd_momentum", small_data)
        trainer_b.train(8, checkpoint_every=4, checkpoint_dir=tmp_path)
        _, _, _, trainer_c = make_setup("dpsgd_momentum", small_data)
        trainer_c.train(TOTAL, checkpoint_every=4, checkpoint_dir=tmp_path)
        assert len(trainer_c.telemetry.events) == full_steps


class TestMismatchDetection:
    def test_wrong_optimizer_class(self, small_data, tmp_path):
        _, _, _, trainer = make_setup("dpsgd_momentum", small_data)
        history = trainer.train(4)
        state = capture_training_state(trainer, history, 4)

        _, _, _, other = make_setup("geodp_momentum", small_data)
        with pytest.raises(SnapshotError, match="DpSgdOptimizer"):
            restore_training_state(other, state)

    def test_wrong_model_size(self, small_data, tmp_path):
        _, _, _, trainer = make_setup("dpsgd_momentum", small_data)
        history = trainer.train(4)
        state = capture_training_state(trainer, history, 4)
        state["num_params"] = 3

        _, _, _, fresh = make_setup("dpsgd_momentum", small_data)
        with pytest.raises(SnapshotError, match="parameters"):
            restore_training_state(fresh, state)

    def test_sur_attachment_mismatch(self, small_data, tmp_path):
        _, _, _, trainer = make_setup("dpsgd_sur", small_data)
        history = trainer.train(4)
        state = capture_training_state(trainer, history, 4)

        _, _, _, plain = make_setup("dpsgd_momentum", small_data)
        with pytest.raises(SnapshotError, match="SUR"):
            restore_training_state(plain, state)

    def test_capture_round_trips_through_disk(self, small_data, tmp_path):
        _, _, _, trainer = make_setup("dpsgd_momentum", small_data)
        history = trainer.train(4)
        state = capture_training_state(trainer, history, 4)
        path = save_snapshot(tmp_path / "s.npz", state)
        _, loaded = latest_snapshot(tmp_path) or (None, None)
        assert loaded is None  # filename is not snapshot-NNN.npz, scan ignores it

        _, _, _, fresh = make_setup("dpsgd_momentum", small_data)
        from repro.checkpoint import load_snapshot

        restored_history, iteration = restore_training_state(fresh, load_snapshot(path))
        assert iteration == 4
        assert restored_history.losses == history.losses
