"""Tests for the snapshot file format: round-trips, atomicity, corruption."""

import json
import warnings
import zipfile

import numpy as np
import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    save_snapshot,
    snapshot_path,
)


def nested_state(rng):
    return {
        "iteration": 42,
        "label": "dpsgd",
        "flag": True,
        "nothing": None,
        "lr": 0.1 + 1e-17,
        "params": rng.normal(size=257),
        "nested": {
            "velocity": rng.normal(size=(3, 5)),
            "history": [1.0, 2.5, float(np.float64(1) / 3)],
            "ints": np.arange(4),
        },
        "list_of_arrays": [rng.normal(size=2), rng.normal(size=2)],
    }


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        state = nested_state(np.random.default_rng(0))
        path = save_snapshot(tmp_path / "snap.npz", state)
        loaded = load_snapshot(path)
        assert loaded["iteration"] == 42
        assert loaded["label"] == "dpsgd"
        assert loaded["flag"] is True
        assert loaded["nothing"] is None
        assert loaded["lr"] == state["lr"]  # exact float, not approx
        assert np.array_equal(loaded["params"], state["params"])
        assert np.array_equal(loaded["nested"]["velocity"], state["nested"]["velocity"])
        assert loaded["nested"]["history"] == state["nested"]["history"]
        assert np.array_equal(loaded["nested"]["ints"], state["nested"]["ints"])
        for got, want in zip(loaded["list_of_arrays"], state["list_of_arrays"]):
            assert np.array_equal(got, want)

    def test_array_dtype_preserved(self, tmp_path):
        state = {"f32": np.ones(3, dtype=np.float32), "i8": np.ones(3, dtype=np.int8)}
        loaded = load_snapshot(save_snapshot(tmp_path / "s.npz", state))
        assert loaded["f32"].dtype == np.float32
        assert loaded["i8"].dtype == np.int8

    def test_numpy_scalars_become_python(self, tmp_path):
        state = {"a": np.int64(3), "b": np.float64(0.25), "c": np.bool_(True)}
        loaded = load_snapshot(save_snapshot(tmp_path / "s.npz", state))
        assert loaded == {"a": 3, "b": 0.25, "c": True}

    def test_rejects_non_dict_state(self, tmp_path):
        with pytest.raises(TypeError):
            save_snapshot(tmp_path / "s.npz", [1, 2, 3])

    def test_rejects_non_string_keys(self, tmp_path):
        with pytest.raises(TypeError):
            save_snapshot(tmp_path / "s.npz", {1: "x"})

    def test_rejects_reserved_key(self, tmp_path):
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "s.npz", {"__ndarray__": "x"})

    def test_rejects_unserialisable_value(self, tmp_path):
        with pytest.raises(TypeError):
            save_snapshot(tmp_path / "s.npz", {"x": object()})


class TestAtomicity:
    def test_no_tmp_files_left(self, tmp_path):
        save_snapshot(tmp_path / "snap.npz", {"x": 1})
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["snap.npz"]

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, {"x": np.zeros(1000)})
        save_snapshot(path, {"x": 1})
        assert load_snapshot(path) == {"x": 1}


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            load_snapshot(tmp_path / "nope.npz")

    def test_truncated_file(self, tmp_path):
        path = save_snapshot(tmp_path / "snap.npz", {"x": np.zeros(100)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "snap.npz"
        meta = np.frombuffer(json.dumps({"magic": "other"}).encode(), dtype=np.uint8)
        np.savez(path, metadata=meta)
        with pytest.raises(SnapshotError, match="not a training snapshot"):
            load_snapshot(path)

    def test_plain_npz_without_metadata(self, tmp_path):
        path = tmp_path / "snap.npz"
        np.savez(path, params=np.zeros(3))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_future_schema_version(self, tmp_path):
        path = tmp_path / "snap.npz"
        payload = {
            "magic": "repro-training-snapshot",
            "schema_version": SCHEMA_VERSION + 1,
            "state": {},
        }
        meta = np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)
        np.savez(path, metadata=meta)
        with pytest.raises(SnapshotError, match="schema version"):
            load_snapshot(path)

    def test_missing_array_channel(self, tmp_path):
        path = tmp_path / "snap.npz"
        payload = {
            "magic": "repro-training-snapshot",
            "schema_version": SCHEMA_VERSION,
            "state": {"x": {"__ndarray__": "array_0"}},
        }
        meta = np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)
        np.savez(path, metadata=meta)
        with pytest.raises(SnapshotError, match="missing array"):
            load_snapshot(path)


class TestDirectoryScan:
    def test_snapshot_path_naming(self, tmp_path):
        assert snapshot_path(tmp_path, 7).name == "snapshot-000000007.npz"
        with pytest.raises(ValueError):
            snapshot_path(tmp_path, -1)

    def test_list_sorted_by_iteration(self, tmp_path):
        for it in (30, 10, 20):
            save_snapshot(snapshot_path(tmp_path, it), {"iteration": it})
        (tmp_path / "unrelated.npz").write_bytes(b"x")
        iters = [load_snapshot(p)["iteration"] for p in list_snapshots(tmp_path)]
        assert iters == [10, 20, 30]

    def test_empty_or_missing_directory(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        assert latest_snapshot(tmp_path / "absent") is None
        assert list_snapshots(tmp_path / "absent") == []

    def test_latest_picks_newest(self, tmp_path):
        for it in (10, 20, 30):
            save_snapshot(snapshot_path(tmp_path, it), {"iteration": it})
        path, state = latest_snapshot(tmp_path)
        assert state["iteration"] == 30

    def test_latest_max_iteration_filter(self, tmp_path):
        for it in (10, 20, 30):
            save_snapshot(snapshot_path(tmp_path, it), {"iteration": it})
        _, state = latest_snapshot(tmp_path, max_iteration=25)
        assert state["iteration"] == 20
        assert latest_snapshot(tmp_path, max_iteration=5) is None

    def test_latest_skips_corrupt_newest_with_warning(self, tmp_path):
        save_snapshot(snapshot_path(tmp_path, 10), {"iteration": 10})
        # a hard kill mid-write can leave a truncated newest file
        snapshot_path(tmp_path, 20).write_bytes(b"partial write")
        with pytest.warns(UserWarning, match="skipping invalid snapshot"):
            _, state = latest_snapshot(tmp_path)
        assert state["iteration"] == 10

    def test_latest_all_corrupt_returns_none(self, tmp_path):
        snapshot_path(tmp_path, 10).write_bytes(b"junk")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert latest_snapshot(tmp_path) is None

    def test_snapshot_is_a_valid_zip(self, tmp_path):
        path = save_snapshot(snapshot_path(tmp_path, 1), {"x": np.zeros(3)})
        assert zipfile.is_zipfile(path)
