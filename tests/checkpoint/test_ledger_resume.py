"""The release ledger must survive checkpoint/resume bit-identically: an
interrupted-and-resumed run's ledger has the same entries, the same hash
chain head, and still passes replay verification against the live
accountant — no release is lost or double-recorded across the restart."""

import pytest

from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.privacy import RdpAccountant, ReleaseLedger, verify_ledger

TOTAL = 12
SNAP_EVERY = 4


@pytest.fixture(scope="module")
def small_data():
    data = make_mnist_like(240, rng=0, size=10)
    return train_test_split(data, rng=0)


def make_setup(kind, data):
    train, test = data
    model = build_logistic_regression((1, 10, 10), rng=0)
    accountant = RdpAccountant()
    ledger = ReleaseLedger()
    common = dict(
        rng=2, accountant=accountant, sample_rate=32 / len(train), ledger=ledger
    )
    if kind == "dpsgd":
        optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, momentum=0.9, **common)
    else:
        optimizer = GeoDpSgdOptimizer(1.0, 0.1, 1.0, beta=0.1, **common)
    trainer = Trainer(
        model, optimizer, train, test_data=test, batch_size=32, rng=1
    )
    return trainer, accountant, ledger


@pytest.mark.parametrize("kind", ["dpsgd", "geodp"])
def test_ledger_survives_resume_bit_identically(small_data, tmp_path, kind):
    trainer_a, acc_a, ledger_a = make_setup(kind, small_data)
    trainer_a.train(TOTAL)

    ckpt = tmp_path / kind
    trainer_b, _, ledger_b = make_setup(kind, small_data)
    trainer_b.train(7, checkpoint_every=SNAP_EVERY, checkpoint_dir=ckpt)
    head_at_interrupt = ledger_b.head

    trainer_c, acc_c, ledger_c = make_setup(kind, small_data)
    trainer_c.train(TOTAL, checkpoint_every=SNAP_EVERY, checkpoint_dir=ckpt)

    # Restored from the iteration-4 snapshot, re-trained 5..12: the chain
    # of the resumed run extends the snapshot's prefix, and the end state
    # matches the uninterrupted run exactly.
    assert len(ledger_c.entries) == TOTAL == len(ledger_a.entries)
    assert ledger_c.head == ledger_a.head
    assert [r.to_dict() for r in ledger_c.entries] == [
        r.to_dict() for r in ledger_a.entries
    ]
    assert ledger_c.entries[SNAP_EVERY - 1].entry_hash == (
        ledger_b.entries[SNAP_EVERY - 1].entry_hash
    )
    assert ledger_c.head != head_at_interrupt  # chain grew past the crash point

    ledger_c.verify_chain()
    assert verify_ledger(ledger_c, acc_c, tol=1e-9).ok
    assert verify_ledger(ledger_a, acc_a, tol=1e-9).ok


def test_snapshot_with_ledger_requires_attached_ledger(small_data, tmp_path):
    trainer_a, _, _ = make_setup("dpsgd", small_data)
    trainer_a.train(4, checkpoint_every=4, checkpoint_dir=tmp_path)

    train, test = small_data
    bare = Trainer(
        build_logistic_regression((1, 10, 10), rng=0),
        DpSgdOptimizer(
            1.0, 0.1, 1.0, momentum=0.9, rng=2,
            accountant=RdpAccountant(), sample_rate=32 / len(train),
        ),
        train, test_data=test, batch_size=32, rng=1,
    )
    with pytest.raises(ValueError, match="ledger"):
        bare.train(8, checkpoint_every=4, checkpoint_dir=tmp_path)


def test_pre_ledger_snapshot_still_loads(small_data, tmp_path):
    """Snapshots written before the ledger existed (no 'ledger' key) load."""
    train, test = small_data

    def bare_setup():
        return Trainer(
            build_logistic_regression((1, 10, 10), rng=0),
            DpSgdOptimizer(1.0, 0.1, 1.0, rng=2),
            train, test_data=test, batch_size=32, rng=1,
        )

    trainer_a = bare_setup()
    trainer_a.train(4, checkpoint_every=4, checkpoint_dir=tmp_path)

    # Simulate an old snapshot: drop the optimizer's ledger key entirely.
    from repro.checkpoint import list_snapshots, load_snapshot, save_snapshot

    path = list_snapshots(tmp_path)[-1]
    state = load_snapshot(path)
    assert state["optimizer"].pop("ledger", "missing") is None
    save_snapshot(path, state)

    trainer_b = bare_setup()
    history = trainer_b.train(8, checkpoint_every=4, checkpoint_dir=tmp_path)
    assert history.iterations == 8
