"""Statistical test harness for the DP mechanisms.

Distributional checks with explicit significance levels rather than loose
``np.isclose`` tolerances: the Gaussian mechanism's empirical noise must
match ``sigma * sensitivity`` under a chi-square bound, its moments must be
Gaussian, and DP-SGD's recorded noise must scale exactly as predicted when
the noise multiplier doubles.  All draws use fixed seeds, so the tests are
deterministic; the quantile bounds say how surprising a failure would be
had the seed been fresh.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core import DpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.privacy import GaussianMechanism, LaplaceMechanism
from repro.telemetry import MetricsRecorder

# Two-sided tail mass for the chi-square bounds.  With fixed seeds the
# tests are deterministic; this is the false-positive rate a fresh seed
# would have, chosen so a true distribution essentially never fails.
ALPHA = 1e-6
N_SAMPLES = 200_000


def chi2_variance_bounds(n: int, alpha: float = ALPHA) -> tuple[float, float]:
    """Acceptance interval for ``sum(x^2) / true_var`` of n N(0, var) draws."""
    return stats.chi2.ppf(alpha / 2, n), stats.chi2.ppf(1 - alpha / 2, n)


class TestGaussianMechanismStatistics:
    def sample_noise(self, mech: GaussianMechanism, seed: int = 0) -> np.ndarray:
        return mech.perturb(np.zeros(N_SAMPLES), rng=seed)

    @pytest.mark.parametrize("sensitivity,sigma", [(1.0, 1.0), (0.1, 2.5), (3.0, 0.5)])
    def test_empirical_std_matches_sigma_times_sensitivity(self, sensitivity, sigma):
        noise = self.sample_noise(GaussianMechanism(sensitivity, sigma=sigma))
        lo, hi = chi2_variance_bounds(N_SAMPLES)
        statistic = np.sum(noise**2) / (sigma * sensitivity) ** 2
        assert lo < statistic < hi

    def test_wrong_scale_rejected(self):
        """The chi-square bound has power: a 5% miscalibration fails it."""
        noise = self.sample_noise(GaussianMechanism(1.0, sigma=1.05))
        lo, hi = chi2_variance_bounds(N_SAMPLES)
        statistic = np.sum(noise**2) / 1.0  # claimed sigma = 1.0
        assert not lo < statistic < hi

    def test_moments_are_gaussian(self):
        scale = 2.0
        noise = self.sample_noise(GaussianMechanism(1.0, sigma=scale))
        n = N_SAMPLES
        # Mean of n draws is N(0, scale^2 / n).
        z = abs(np.mean(noise)) / (scale / np.sqrt(n))
        assert z < stats.norm.ppf(1 - ALPHA / 2)
        # Standardised fourth moment -> 3; estimator std is sqrt(96/n).
        kurtosis = np.mean(noise**4) / scale**4
        assert abs(kurtosis - 3.0) < stats.norm.ppf(1 - ALPHA / 2) * np.sqrt(96 / n)

    def test_epsilon_delta_construction_matches_classic_sigma(self):
        mech = GaussianMechanism(1.0, epsilon=0.5, delta=1e-5)
        expected = np.sqrt(2 * np.log(1.25 / 1e-5)) / 0.5
        assert mech.sigma == pytest.approx(expected)
        noise = self.sample_noise(mech)
        lo, hi = chi2_variance_bounds(N_SAMPLES)
        assert lo < np.sum(noise**2) / mech.noise_scale**2 < hi


class TestLaplaceMechanismStatistics:
    def test_empirical_variance(self):
        mech = LaplaceMechanism(1.0, epsilon=0.5)  # b = 2.0
        noise = mech.perturb(np.zeros(N_SAMPLES), rng=0)
        # Var = 2 b^2; the variance estimator of a Laplace sample has
        # std sqrt((kurtosis_excess + 2) / n) * Var = sqrt(5/n) * 2b^2.
        var = np.mean(noise**2)
        tolerance = stats.norm.ppf(1 - ALPHA / 2) * np.sqrt(5 / N_SAMPLES)
        assert abs(var / (2 * mech.noise_scale**2) - 1.0) < tolerance

    def test_heavier_tails_than_gaussian(self):
        """Laplace kurtosis is 6, Gaussian is 3 — the harness tells them apart."""
        mech = LaplaceMechanism(1.0, epsilon=1.0)
        noise = mech.perturb(np.zeros(N_SAMPLES), rng=0)
        kurtosis = np.mean(noise**4) / np.mean(noise**2) ** 2
        assert kurtosis > 4.5


@pytest.mark.slow
class TestDpSgdNoiseScaling:
    """Doubling sigma must exactly double DP-SGD's recorded noise norms."""

    ITERS = 25

    def run(self, sigma: float) -> MetricsRecorder:
        data = make_mnist_like(300, rng=0, size=10)
        train, _ = train_test_split(data, rng=0)
        recorder = MetricsRecorder()
        model = build_logistic_regression((1, 10, 10), rng=0)
        optimizer = DpSgdOptimizer(1.0, 0.1, sigma, rng=11)
        Trainer(
            model, optimizer, train, batch_size=64, rng=5, telemetry=recorder
        ).train(self.ITERS)
        return recorder

    def test_noise_norm_doubles_with_sigma(self):
        base = self.run(sigma=1.0)
        doubled = self.run(sigma=2.0)
        assert base.values("sigma") == [1.0] * self.ITERS
        assert doubled.values("sigma") == [2.0] * self.ITERS
        # Same noise seed and same draw shapes, so the underlying standard
        # normals are identical and the norms scale exactly linearly.
        np.testing.assert_allclose(
            doubled.values("noise_norm"),
            2.0 * np.asarray(base.values("noise_norm")),
            rtol=1e-12,
        )

    def test_noise_to_signal_scales_as_predicted(self):
        base = self.run(sigma=1.0)
        doubled = self.run(sigma=2.0)
        # Trajectories diverge, so compare the seed-robust per-run means:
        # noise-to-signal = noise_norm / post_clip_norm should double too,
        # up to the (small) drift in the post-clip signal norm.
        ratio = np.mean(doubled.values("noise_to_signal")) / np.mean(
            base.values("noise_to_signal")
        )
        assert 1.6 < ratio < 2.4
