"""Tests for privacy-curve utilities."""

import numpy as np
import pytest

from repro.privacy.curves import epsilon_curve, find_noise_multiplier, steps_until_budget
from repro.privacy.rdp import DEFAULT_ALPHAS, rdp_subsampled_gaussian, rdp_to_dp


def composed(sigma, q, steps, delta):
    rdp = steps * rdp_subsampled_gaussian(q, sigma, DEFAULT_ALPHAS)
    return rdp_to_dp(DEFAULT_ALPHAS, rdp, delta)[0]


class TestFindNoiseMultiplier:
    def test_meets_target(self):
        sigma = find_noise_multiplier(2.0, 1e-5, 0.01, 1000)
        assert composed(sigma, 0.01, 1000, 1e-5) <= 2.0 * (1 + 1e-3)

    def test_is_tight(self):
        sigma = find_noise_multiplier(2.0, 1e-5, 0.01, 1000)
        assert composed(sigma * 0.95, 0.01, 1000, 1e-5) > 2.0

    def test_tighter_target_needs_more_noise(self):
        loose = find_noise_multiplier(5.0, 1e-5, 0.01, 500)
        tight = find_noise_multiplier(0.5, 1e-5, 0.01, 500)
        assert tight > loose

    def test_more_steps_need_more_noise(self):
        short = find_noise_multiplier(1.0, 1e-5, 0.01, 100)
        long = find_noise_multiplier(1.0, 1e-5, 0.01, 10000)
        assert long > short

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            find_noise_multiplier(1.0, 1e-5, 0.01, 0)


class TestEpsilonCurve:
    def test_monotone(self):
        curve = epsilon_curve(1.0, 0.01, [0, 10, 100, 1000, 10000], 1e-5)
        assert curve[0] == 0.0
        assert np.all(np.diff(curve) > 0)

    def test_matches_direct_composition(self):
        curve = epsilon_curve(1.2, 0.02, [500], 1e-5)
        assert curve[0] == pytest.approx(composed(1.2, 0.02, 500, 1e-5))

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            epsilon_curve(1.0, 0.01, [-5], 1e-5)


class TestStepsUntilBudget:
    def test_consistent_with_curve(self):
        steps = steps_until_budget(1.0, 0.01, 2.0, 1e-5)
        assert composed(1.0, 0.01, steps, 1e-5) <= 2.0
        assert composed(1.0, 0.01, steps + 1, 1e-5) > 2.0

    def test_zero_when_budget_tiny(self):
        assert steps_until_budget(0.5, 0.9, 1e-4, 1e-5) == 0

    def test_round_trip_with_find_noise_multiplier(self):
        sigma = find_noise_multiplier(3.0, 1e-5, 0.02, 2000)
        steps = steps_until_budget(sigma, 0.02, 3.0, 1e-5)
        assert steps >= 2000

    def test_max_steps_cap(self):
        assert steps_until_budget(100.0, 0.001, 10.0, 1e-5, max_steps=50) == 50
