"""Tests for the local-DP mechanisms."""

import numpy as np
import pytest

from repro.privacy.local import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    RandomizedResponse,
    perturb_vector,
)


class TestRandomizedResponse:
    def test_keep_probability(self):
        rr = RandomizedResponse(np.log(3), num_categories=2)
        # e^eps = 3, k = 2 -> p_true = 3/4.
        assert rr.p_true == pytest.approx(0.75)

    def test_outputs_valid_categories(self, rng):
        rr = RandomizedResponse(1.0, num_categories=5)
        out = rr.perturb(rng.integers(0, 5, size=1000), rng)
        assert out.min() >= 0 and out.max() < 5

    def test_frequency_estimation_unbiased(self):
        rng = np.random.default_rng(0)
        true_freq = np.array([0.5, 0.3, 0.2])
        values = rng.choice(3, size=60_000, p=true_freq)
        rr = RandomizedResponse(1.5, num_categories=3)
        est = rr.estimate_frequencies(rr.perturb(values, rng))
        assert np.allclose(est, true_freq, atol=0.02)

    def test_high_epsilon_barely_perturbs(self, rng):
        rr = RandomizedResponse(10.0, num_categories=4)
        values = rng.integers(0, 4, size=2000)
        out = rr.perturb(values, rng)
        assert (out == values).mean() > 0.95

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RandomizedResponse(1.0, num_categories=1)
        rr = RandomizedResponse(1.0, num_categories=3)
        with pytest.raises(ValueError):
            rr.perturb([3])


class TestDuchiMechanism:
    def test_output_is_plus_minus_a(self, rng):
        mech = DuchiMechanism(1.0)
        out = mech.perturb(rng.uniform(-1, 1, 500), rng)
        assert np.allclose(np.abs(out), mech.magnitude)

    def test_unbiased(self):
        rng = np.random.default_rng(0)
        mech = DuchiMechanism(1.0)
        for t in (-0.8, 0.0, 0.5):
            out = mech.perturb(np.full(120_000, t), rng)
            assert out.mean() == pytest.approx(t, abs=0.03)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DuchiMechanism(1.0).perturb([1.5])

    def test_variance_shrinks_with_epsilon(self):
        assert DuchiMechanism(4.0).worst_case_variance() < DuchiMechanism(
            0.5
        ).worst_case_variance()


class TestPiecewiseMechanism:
    def test_output_bounded_by_c(self, rng):
        mech = PiecewiseMechanism(1.0)
        out = mech.perturb(rng.uniform(-1, 1, 2000), rng)
        assert np.all(np.abs(out) <= mech.c + 1e-9)

    def test_unbiased(self):
        rng = np.random.default_rng(1)
        mech = PiecewiseMechanism(2.0)
        for t in (-0.7, 0.0, 0.9):
            out = mech.perturb(np.full(120_000, t), rng)
            assert out.mean() == pytest.approx(t, abs=0.03)

    def test_empirical_variance_matches_closed_form(self):
        rng = np.random.default_rng(2)
        mech = PiecewiseMechanism(1.5)
        t = 0.4
        out = mech.perturb(np.full(200_000, t), rng)
        assert out.var() == pytest.approx(mech.variance(t), rel=0.03)

    def test_pm_beats_duchi_at_large_epsilon(self):
        eps = 4.0
        assert (
            PiecewiseMechanism(eps).worst_case_variance()
            < DuchiMechanism(eps).worst_case_variance()
        )

    def test_duchi_beats_pm_at_small_epsilon(self):
        eps = 0.3
        assert (
            DuchiMechanism(eps).worst_case_variance()
            < PiecewiseMechanism(eps).worst_case_variance()
        )


class TestHybridMechanism:
    def test_unbiased(self):
        rng = np.random.default_rng(3)
        mech = HybridMechanism(1.5)
        out = mech.perturb(np.full(120_000, 0.6), rng)
        assert out.mean() == pytest.approx(0.6, abs=0.03)

    def test_small_epsilon_pure_duchi(self):
        assert HybridMechanism(0.5).pm_probability == 0.0

    def test_large_epsilon_mostly_pm(self):
        assert HybridMechanism(6.0).pm_probability > 0.9


class TestPerturbVector:
    def test_shape_and_sparsity(self, rng):
        x = rng.uniform(-1, 1, size=(20, 30))
        out = perturb_vector(x, 2.0, rng, k=2)
        assert out.shape == (20, 30)
        assert np.all((out != 0).sum(axis=1) <= 2)

    def test_unbiased_mean_estimate(self):
        rng = np.random.default_rng(4)
        d = 8
        true_mean = np.linspace(-0.5, 0.5, d)
        x = np.tile(true_mean, (40_000, 1))
        out = perturb_vector(x, 4.0, rng, k=2)
        assert np.allclose(out.mean(axis=0), true_mean, atol=0.06)

    def test_mechanism_selectable(self, rng):
        x = rng.uniform(-1, 1, size=(5, 4))
        for mech in ("pm", "duchi", "hybrid"):
            out = perturb_vector(x, 1.0, rng, k=1, mechanism=mech)
            assert out.shape == x.shape

    def test_invalid_args(self, rng):
        x = rng.uniform(-1, 1, size=(3, 4))
        with pytest.raises(ValueError, match="k must be"):
            perturb_vector(x, 1.0, rng, k=5)
        with pytest.raises(ValueError, match="mechanism"):
            perturb_vector(x, 1.0, rng, mechanism="exp")
        with pytest.raises(ValueError, match="\\[-1, 1\\]"):
            perturb_vector(np.full((1, 2), 2.0), 1.0, rng)
