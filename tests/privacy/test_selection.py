"""Tests for DP selection mechanisms."""

import numpy as np
import pytest

from repro.privacy.selection import (
    ExponentialMechanism,
    SparseVectorTechnique,
    report_noisy_max,
)


class TestExponentialMechanism:
    def test_probabilities_sum_to_one(self, rng):
        mech = ExponentialMechanism(1.0, 1.0)
        probs = mech.probabilities(rng.normal(size=10))
        assert probs.sum() == pytest.approx(1.0)

    def test_prefers_high_scores(self):
        mech = ExponentialMechanism(2.0, 1.0)
        probs = mech.probabilities(np.array([0.0, 5.0, 10.0]))
        assert probs[0] < probs[1] < probs[2]

    def test_probability_ratio_matches_definition(self):
        mech = ExponentialMechanism(1.0, 1.0)
        probs = mech.probabilities(np.array([0.0, 2.0]))
        # ratio = exp(eps * (s2 - s1) / (2 * Delta)) = e^1
        assert probs[1] / probs[0] == pytest.approx(np.e)

    def test_low_epsilon_near_uniform(self, rng):
        mech = ExponentialMechanism(1e-6, 1.0)
        probs = mech.probabilities(rng.normal(size=5))
        assert np.allclose(probs, 0.2, atol=1e-5)

    def test_select_distribution(self):
        mech = ExponentialMechanism(4.0, 1.0)
        scores = np.array([0.0, 3.0])
        rng = np.random.default_rng(0)
        picks = [mech.select(scores, rng) for _ in range(2000)]
        expected = mech.probabilities(scores)[1]
        assert np.mean(picks) == pytest.approx(expected, abs=0.03)

    def test_overflow_safe(self):
        probs = ExponentialMechanism(1.0, 1e-6).probabilities(np.array([0.0, 1000.0]))
        assert np.isfinite(probs).all()

    def test_empty_scores(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(1.0, 1.0).probabilities(np.array([]))


class TestReportNoisyMax:
    def test_high_epsilon_returns_true_max(self, rng):
        scores = np.array([1.0, 5.0, 2.0])
        picks = {report_noisy_max(scores, 1000.0, 1.0, rng) for _ in range(50)}
        assert picks == {1}

    def test_low_epsilon_randomises(self, rng):
        scores = np.array([1.0, 1.1])
        picks = {report_noisy_max(scores, 0.01, 1.0, rng) for _ in range(200)}
        assert picks == {0, 1}

    def test_gumbel_matches_exponential_mechanism(self):
        scores = np.array([0.0, 2.0])
        eps = 1.0
        rng = np.random.default_rng(0)
        picks = [report_noisy_max(scores, eps, 1.0, rng) for _ in range(20000)]
        expected = ExponentialMechanism(eps, 1.0).probabilities(scores)[1]
        assert np.mean(picks) == pytest.approx(expected, abs=0.02)

    def test_laplace_variant(self, rng):
        assert report_noisy_max([0.0, 100.0], 10.0, 1.0, rng, noise="laplace") == 1

    def test_unknown_noise(self):
        with pytest.raises(ValueError, match="noise"):
            report_noisy_max([1.0], 1.0, 1.0, noise="cauchy")


class TestSparseVectorTechnique:
    def test_obvious_answers(self):
        svt = SparseVectorTechnique(100.0, threshold=0.0, cutoff=5, rng=0)
        assert svt.query(100.0) is True
        assert svt.query(-100.0) is False

    def test_cutoff_enforced(self):
        svt = SparseVectorTechnique(100.0, threshold=0.0, cutoff=2, rng=0)
        svt.query(10.0)
        svt.query(10.0)
        assert svt.exhausted
        with pytest.raises(RuntimeError, match="exhausted"):
            svt.query(10.0)

    def test_below_threshold_free(self):
        svt = SparseVectorTechnique(100.0, threshold=0.0, cutoff=1, rng=0)
        for _ in range(50):
            assert svt.query(-50.0) is False
        assert not svt.exhausted
        assert svt.queries_seen == 50

    def test_noise_flips_borderline(self):
        results = set()
        for seed in range(100):
            svt = SparseVectorTechnique(0.5, threshold=0.0, cutoff=1, rng=seed)
            results.add(svt.query(0.0))
        assert results == {True, False}

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            SparseVectorTechnique(1.0, 0.0, cutoff=0)
