"""Tests for Gaussian-DP (f-DP) accounting."""

import pytest

from repro.privacy import RdpAccountant, gaussian_epsilon
from repro.privacy.gdp import (
    GdpAccountant,
    dpsgd_gdp_mu,
    gaussian_gdp_mu,
    gdp_delta,
    gdp_epsilon,
)


class TestSingleGaussian:
    def test_mu_formula(self):
        assert gaussian_gdp_mu(2.0) == pytest.approx(0.5)

    def test_matches_analytic_gaussian_curve(self):
        """For one Gaussian release, mu-GDP duality IS the analytic curve:
        both must give the same (epsilon, delta) pairs."""
        for sigma in (0.8, 1.5, 4.0):
            mu = gaussian_gdp_mu(sigma)
            eps_gdp = gdp_epsilon(mu, 1e-5)
            eps_exact = gaussian_epsilon(sigma, 1e-5)
            assert eps_gdp == pytest.approx(eps_exact, rel=1e-4)


class TestDuality:
    def test_delta_monotone_in_epsilon(self):
        deltas = [gdp_delta(1.0, e) for e in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert deltas == sorted(deltas, reverse=True)

    def test_delta_monotone_in_mu(self):
        assert gdp_delta(0.5, 1.0) < gdp_delta(2.0, 1.0)

    def test_epsilon_inverts_delta(self):
        mu = 1.3
        eps = gdp_epsilon(mu, 1e-6)
        assert gdp_delta(mu, eps) <= 1e-6 * (1 + 1e-6)
        assert gdp_delta(mu, eps * 0.99) > 1e-6

    def test_delta_in_unit_interval(self):
        for mu in (0.1, 1.0, 5.0):
            for eps in (0.0, 1.0, 10.0):
                assert 0.0 <= gdp_delta(mu, eps) <= 1.0


class TestDpsgdClt:
    def test_mu_scaling(self):
        base = dpsgd_gdp_mu(1.0, 0.01, 100)
        assert dpsgd_gdp_mu(1.0, 0.02, 100) == pytest.approx(2 * base)
        assert dpsgd_gdp_mu(1.0, 0.01, 400) == pytest.approx(2 * base)

    def test_more_noise_smaller_mu(self):
        assert dpsgd_gdp_mu(4.0, 0.01, 100) < dpsgd_gdp_mu(1.0, 0.01, 100)

    def test_clt_agrees_with_rdp_in_its_regime(self):
        """Small q, large T: the CLT epsilon should be in the same ballpark
        as (and typically below) the RDP bound."""
        sigma, q, steps = 1.0, 0.005, 5000
        gdp = GdpAccountant(sigma, q)
        gdp.step(steps)
        rdp = RdpAccountant()
        rdp.step(sigma, q, num_steps=steps)
        eps_gdp = gdp.get_epsilon(1e-5)
        eps_rdp = rdp.get_epsilon(1e-5)
        assert eps_gdp < eps_rdp  # CLT approximation is tighter here
        assert eps_gdp > 0.3 * eps_rdp  # but not wildly off


class TestAccountant:
    def test_zero_steps(self):
        acc = GdpAccountant(1.0, 0.01)
        assert acc.mu == 0.0
        assert acc.get_epsilon(1e-5) == 0.0

    def test_step_accumulation(self):
        acc = GdpAccountant(1.0, 0.01)
        acc.step(10)
        acc.step(30)
        assert acc.steps == 40
        assert acc.mu == pytest.approx(dpsgd_gdp_mu(1.0, 0.01, 40))

    def test_epsilon_grows_with_steps(self):
        acc = GdpAccountant(1.0, 0.02)
        acc.step(100)
        e1 = acc.get_epsilon(1e-5)
        acc.step(900)
        assert acc.get_epsilon(1e-5) > e1

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            GdpAccountant(1.0, 0.01).step(0)
