"""Tests for the Gaussian and Laplace mechanisms."""

import numpy as np
import pytest

from repro.privacy import GaussianMechanism, LaplaceMechanism


class TestGaussianMechanism:
    def test_noise_scale(self):
        mech = GaussianMechanism(2.0, sigma=3.0)
        assert mech.noise_scale == pytest.approx(6.0)

    def test_perturb_shape_and_dtype(self, rng):
        mech = GaussianMechanism(1.0, sigma=1.0)
        out = mech.perturb(np.zeros((4, 5)), rng)
        assert out.shape == (4, 5)
        assert out.dtype == np.float64

    def test_perturb_statistics(self):
        mech = GaussianMechanism(1.0, sigma=2.0)
        out = mech.perturb(np.zeros(200_000), rng=0)
        assert np.mean(out) == pytest.approx(0.0, abs=0.02)
        assert np.std(out) == pytest.approx(2.0, rel=0.02)

    def test_reproducible_with_seed(self):
        mech = GaussianMechanism(1.0, sigma=1.0)
        a = mech.perturb(np.ones(10), rng=42)
        b = mech.perturb(np.ones(10), rng=42)
        assert np.array_equal(a, b)

    def test_from_epsilon_delta(self):
        mech = GaussianMechanism(1.0, epsilon=0.5, delta=1e-5)
        # classic calibration: sqrt(2 ln(1.25/delta)) / eps
        assert mech.sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)) / 0.5)

    def test_epsilon_query_decreases_with_sigma(self):
        loose = GaussianMechanism(1.0, sigma=0.8).epsilon(1e-5)
        tight = GaussianMechanism(1.0, sigma=4.0).epsilon(1e-5)
        assert tight < loose

    def test_conflicting_args_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            GaussianMechanism(1.0, sigma=1.0, epsilon=1.0, delta=1e-5)
        with pytest.raises(ValueError, match="both epsilon and delta"):
            GaussianMechanism(1.0, epsilon=1.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0, sigma=1.0)


class TestLaplaceMechanism:
    def test_noise_scale(self):
        mech = LaplaceMechanism(2.0, epsilon=0.5)
        assert mech.noise_scale == pytest.approx(4.0)

    def test_perturb_statistics(self):
        mech = LaplaceMechanism(1.0, epsilon=1.0)
        out = mech.perturb(np.zeros(200_000), rng=0)
        # Laplace(b=1): std = sqrt(2) * b
        assert np.std(out) == pytest.approx(np.sqrt(2.0), rel=0.02)

    def test_scalar_input(self):
        out = LaplaceMechanism(1.0, epsilon=1.0).perturb(5.0, rng=0)
        assert out.shape == ()
