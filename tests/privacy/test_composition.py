"""Tests for DP composition theorems."""

import math

import pytest

from repro.privacy import advanced_composition, basic_composition


class TestBasicComposition:
    def test_empty(self):
        assert basic_composition([]) == (0.0, 0.0)

    def test_sums(self):
        eps, delta = basic_composition([(0.5, 1e-6), (0.25, 2e-6), (0.25, 0.0)])
        assert eps == pytest.approx(1.0)
        assert delta == pytest.approx(3e-6)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            basic_composition([(-0.1, 0.0)])


class TestAdvancedComposition:
    def test_formula(self):
        eps, delta = advanced_composition(0.1, 1e-6, 100, 1e-5)
        expected = 0.1 * math.sqrt(2 * 100 * math.log(1e5)) + 100 * 0.1 * (
            math.exp(0.1) - 1
        )
        assert eps == pytest.approx(expected)
        assert delta == pytest.approx(100 * 1e-6 + 1e-5)

    def test_beats_basic_for_small_epsilon_many_steps(self):
        k, eps0 = 1000, 0.01
        adv_eps, _ = advanced_composition(eps0, 0.0, k, 1e-5)
        basic_eps = k * eps0
        assert adv_eps < basic_eps

    def test_single_step_overhead(self):
        # For k = 1 advanced composition is deliberately looser than basic.
        adv_eps, _ = advanced_composition(0.5, 0.0, 1, 1e-5)
        assert adv_eps > 0.5

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0.0, 0, 1e-5)
