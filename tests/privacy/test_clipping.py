"""Tests for per-sample clipping strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PsacClipping,
)


def norms(x):
    return np.linalg.norm(x, axis=1)


grad_matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 20), st.integers(1, 30)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestFlatClipping:
    def test_small_gradients_untouched(self, rng):
        grads = rng.normal(size=(10, 5)) * 0.01
        clipper = FlatClipping(1.0)
        assert np.allclose(clipper.clip(grads), grads)

    def test_large_gradients_rescaled_to_threshold(self, rng):
        grads = rng.normal(size=(10, 5)) * 100
        clipped = FlatClipping(1.0).clip(grads)
        assert np.allclose(norms(clipped), 1.0)

    def test_direction_preserved(self, rng):
        grads = rng.normal(size=(8, 6)) * 10
        clipped = FlatClipping(0.5).clip(grads)
        cos = np.sum(grads * clipped, axis=1) / (norms(grads) * norms(clipped))
        assert np.allclose(cos, 1.0)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices, st.floats(0.01, 10.0))
    def test_sensitivity_bound(self, grads, clip_norm):
        clipper = FlatClipping(clip_norm)
        clipped = clipper.clip(grads)
        assert np.all(norms(clipped) <= clipper.sensitivity() * (1 + 1e-9))

    def test_example_1_from_paper(self):
        # g = (1, sqrt(3)), C = 1 -> clipped = (1/2, sqrt(3)/2).
        clipped = FlatClipping(1.0).clip(np.array([[1.0, np.sqrt(3.0)]]))
        assert np.allclose(clipped, [[0.5, np.sqrt(3.0) / 2]])


class TestAutoSClipping:
    def test_always_rescales(self, rng):
        grads = rng.normal(size=(10, 5))
        clipped = AutoSClipping(1.0, gamma=0.01).clip(grads)
        # AUTO-S multiplies by C/(||g||+gamma) so norms change for all rows.
        assert not np.allclose(norms(clipped), norms(grads))

    def test_norm_strictly_below_threshold(self, rng):
        grads = rng.normal(size=(50, 8)) * rng.uniform(0.001, 100, size=(50, 1))
        clipper = AutoSClipping(2.0, gamma=0.01)
        assert np.all(norms(clipper.clip(grads)) < 2.0)

    def test_large_norm_limit(self):
        grads = np.array([[1e6, 0.0]])
        clipped = AutoSClipping(1.0, gamma=0.01).clip(grads)
        assert norms(clipped)[0] == pytest.approx(1.0, rel=1e-4)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices)
    def test_sensitivity_bound(self, grads):
        clipper = AutoSClipping(1.5)
        assert np.all(norms(clipper.clip(grads)) <= clipper.sensitivity() + 1e-9)


class TestPsacClipping:
    def test_norm_bounded(self, rng):
        grads = rng.normal(size=(50, 8)) * rng.uniform(0.001, 100, size=(50, 1))
        clipper = PsacClipping(1.0, gamma=0.01)
        assert np.all(norms(clipper.clip(grads)) < 1.0)

    def test_tiny_gradients_attenuated(self):
        # ||clipped|| = C ||g||^2/(||g||^2 + gamma): a tiny gradient keeps a
        # tiny share of the budget instead of being inflated.
        tiny = np.array([[1e-4, 0.0]])
        clipped = PsacClipping(1.0, gamma=0.01).clip(tiny)
        assert norms(clipped)[0] < 1e-5

    def test_norm_monotone_in_input_norm(self):
        clipper = PsacClipping(1.0, gamma=0.01)
        small = clipper.clip(np.array([[0.05, 0.0]]))
        large = clipper.clip(np.array([[5.0, 0.0]]))
        assert norms(small)[0] < norms(large)[0]

    def test_zero_gradient_stays_zero(self):
        clipped = PsacClipping(1.0).clip(np.zeros((2, 3)))
        assert np.allclose(clipped, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices)
    def test_sensitivity_bound(self, grads):
        clipper = PsacClipping(2.0)
        assert np.all(norms(clipper.clip(grads)) <= clipper.sensitivity() + 1e-9)


class TestAdaptiveQuantileClipping:
    def test_threshold_moves_toward_quantile(self, rng):
        grads = rng.normal(size=(128, 4))  # norms ~ 2
        clipper = AdaptiveQuantileClipping(100.0, target_quantile=0.5, learning_rate=0.5)
        for _ in range(60):
            clipper.clip(grads)
        median_norm = float(np.median(norms(grads)))
        assert clipper.clip_norm == pytest.approx(median_norm, rel=0.3)

    def test_threshold_rises_when_too_small(self, rng):
        grads = rng.normal(size=(64, 4)) * 10
        clipper = AdaptiveQuantileClipping(0.01, target_quantile=0.5, learning_rate=0.5)
        before = clipper.clip_norm
        clipper.clip(grads)
        assert clipper.clip_norm > before

    def test_clip_respects_current_threshold(self, rng):
        grads = rng.normal(size=(32, 6)) * 100
        clipper = AdaptiveQuantileClipping(1.0)
        clipped = clipper.clip(grads)
        assert np.all(norms(clipped) <= 1.0 + 1e-9)
        assert clipper.sensitivity() == 1.0  # threshold used for this release

    def test_history_records_used_thresholds(self, rng):
        grads = rng.normal(size=(16, 3))
        clipper = AdaptiveQuantileClipping(2.0)
        clipper.clip(grads)
        clipper.clip(grads)
        assert len(clipper.history) == 2
        assert clipper.history[0] == 2.0

    def test_noisy_update_is_seedable(self, rng):
        grads = rng.normal(size=(32, 3))
        a = AdaptiveQuantileClipping(1.0, noise_std=1.0, rng=7)
        b = AdaptiveQuantileClipping(1.0, noise_std=1.0, rng=7)
        a.clip(grads)
        b.clip(grads)
        assert a.clip_norm == b.clip_norm


class TestClipWithNorms:
    """clip() is now a view onto clip_with_norms(); the returned norms must
    be the exact pre-clip per-sample L2 norms for every strategy."""

    @pytest.mark.parametrize(
        "clipper",
        [
            FlatClipping(0.5),
            AutoSClipping(0.5),
            PsacClipping(0.5),
            AdaptiveQuantileClipping(0.5),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_norms_match_pre_clip_norms(self, clipper, rng):
        grads = rng.normal(size=(12, 7))
        clipped, returned = clipper.clip_with_norms(grads)
        assert np.allclose(returned, norms(grads))
        assert clipped.shape == grads.shape

    def test_clip_equals_clip_with_norms(self, rng):
        grads = rng.normal(size=(12, 7))
        assert np.array_equal(
            FlatClipping(0.5).clip(grads), FlatClipping(0.5).clip_with_norms(grads)[0]
        )

    def test_per_layer_returns_total_norms(self, rng):
        from repro.privacy import PerLayerClipping

        grads = rng.normal(size=(6, 10))
        clipper = PerLayerClipping([slice(0, 4), slice(4, 10)], 0.3)
        _, returned = clipper.clip_with_norms(grads)
        assert np.allclose(returned, norms(grads))


class TestLotBracketing:
    """Under microbatch accumulation a lot is one DP release: the adaptive
    threshold must stay frozen across its chunks and update exactly once."""

    def test_threshold_frozen_across_chunks(self, rng):
        grads = rng.normal(size=(30, 5))
        clipper = AdaptiveQuantileClipping(1.0)
        clipper.begin_lot()
        for chunk in np.array_split(grads, 3):
            before = clipper.clip_norm
            clipper.clip(chunk)
            assert clipper.clip_norm == before  # frozen mid-lot
        clipper.end_lot()
        assert clipper.clip_norm != 1.0  # one update, applied at end_lot

    def test_one_history_entry_per_lot(self, rng):
        grads = rng.normal(size=(30, 5))
        clipper = AdaptiveQuantileClipping(1.0)
        for _ in range(4):
            clipper.begin_lot()
            for chunk in np.array_split(grads, 3):
                clipper.clip(chunk)
            clipper.end_lot()
        assert len(clipper.history) == 4

    def test_lot_update_equals_single_call_on_concatenation(self, rng):
        """Chunked lot-mode clipping must be numerically identical to one
        clip() call over the concatenated matrix (same noiseless update)."""
        grads = rng.normal(size=(24, 6))
        lot = AdaptiveQuantileClipping(0.7, target_quantile=0.4, learning_rate=0.3)
        single = AdaptiveQuantileClipping(0.7, target_quantile=0.4, learning_rate=0.3)

        lot.begin_lot()
        chunks = [lot.clip(c) for c in np.array_split(grads, 4)]
        lot.end_lot()
        whole = single.clip(grads)

        assert np.array_equal(np.concatenate(chunks), whole)
        assert lot.clip_norm == single.clip_norm
        assert lot.history == single.history

    def test_sensitivity_mid_lot_is_the_frozen_threshold(self, rng):
        grads = rng.normal(size=(16, 4)) * 100
        clipper = AdaptiveQuantileClipping(2.0)
        clipper.begin_lot()
        clipper.clip(grads)
        assert clipper.sensitivity() == 2.0  # what the chunks are clipped at
        clipper.end_lot()
        assert clipper.sensitivity() == 2.0  # threshold the lot was released at
        assert clipper.clip_norm != 2.0

    def test_empty_lot_does_not_update(self):
        clipper = AdaptiveQuantileClipping(1.0)
        clipper.begin_lot()
        clipper.end_lot()
        assert clipper.clip_norm == 1.0
        assert clipper.history == []

    def test_unbalanced_bracketing_raises(self):
        clipper = AdaptiveQuantileClipping(1.0)
        with pytest.raises(RuntimeError):
            clipper.end_lot()
        clipper.begin_lot()
        with pytest.raises(RuntimeError):
            clipper.begin_lot()

    def test_stateless_strategies_ignore_lot_boundaries(self, rng):
        grads = rng.normal(size=(8, 3))
        for clipper in (FlatClipping(0.5), AutoSClipping(0.5), PsacClipping(0.5)):
            clipper.begin_lot()
            out_in_lot = clipper.clip(grads)
            clipper.end_lot()
            assert np.array_equal(out_in_lot, type(clipper)(0.5).clip(grads))


class TestClippingStateDict:
    def test_adaptive_round_trip_continues_identically(self, rng):
        grads = rng.normal(size=(32, 4))
        a = AdaptiveQuantileClipping(1.0, noise_std=0.5, rng=3)
        for _ in range(5):
            a.clip(grads)
        state = a.state_dict()

        b = AdaptiveQuantileClipping(1.0, noise_std=0.5, rng=99)
        b.load_state_dict(state)
        assert b.clip_norm == a.clip_norm
        assert b.history == a.history
        a.clip(grads)
        b.clip(grads)
        assert b.clip_norm == a.clip_norm  # same rng stream after restore

    def test_adaptive_refuses_mid_lot_checkpoint(self, rng):
        clipper = AdaptiveQuantileClipping(1.0)
        clipper.begin_lot()
        with pytest.raises(RuntimeError, match="mid-lot"):
            clipper.state_dict()

    def test_stateless_state_dict_is_empty(self):
        clipper = FlatClipping(1.0)
        assert clipper.state_dict() == {}
        clipper.load_state_dict({})
        with pytest.raises(ValueError):
            clipper.load_state_dict({"clip_norm": 2.0})
