"""Tests for per-sample clipping strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PsacClipping,
)


def norms(x):
    return np.linalg.norm(x, axis=1)


grad_matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 20), st.integers(1, 30)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestFlatClipping:
    def test_small_gradients_untouched(self, rng):
        grads = rng.normal(size=(10, 5)) * 0.01
        clipper = FlatClipping(1.0)
        assert np.allclose(clipper.clip(grads), grads)

    def test_large_gradients_rescaled_to_threshold(self, rng):
        grads = rng.normal(size=(10, 5)) * 100
        clipped = FlatClipping(1.0).clip(grads)
        assert np.allclose(norms(clipped), 1.0)

    def test_direction_preserved(self, rng):
        grads = rng.normal(size=(8, 6)) * 10
        clipped = FlatClipping(0.5).clip(grads)
        cos = np.sum(grads * clipped, axis=1) / (norms(grads) * norms(clipped))
        assert np.allclose(cos, 1.0)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices, st.floats(0.01, 10.0))
    def test_sensitivity_bound(self, grads, clip_norm):
        clipper = FlatClipping(clip_norm)
        clipped = clipper.clip(grads)
        assert np.all(norms(clipped) <= clipper.sensitivity() * (1 + 1e-9))

    def test_example_1_from_paper(self):
        # g = (1, sqrt(3)), C = 1 -> clipped = (1/2, sqrt(3)/2).
        clipped = FlatClipping(1.0).clip(np.array([[1.0, np.sqrt(3.0)]]))
        assert np.allclose(clipped, [[0.5, np.sqrt(3.0) / 2]])


class TestAutoSClipping:
    def test_always_rescales(self, rng):
        grads = rng.normal(size=(10, 5))
        clipped = AutoSClipping(1.0, gamma=0.01).clip(grads)
        # AUTO-S multiplies by C/(||g||+gamma) so norms change for all rows.
        assert not np.allclose(norms(clipped), norms(grads))

    def test_norm_strictly_below_threshold(self, rng):
        grads = rng.normal(size=(50, 8)) * rng.uniform(0.001, 100, size=(50, 1))
        clipper = AutoSClipping(2.0, gamma=0.01)
        assert np.all(norms(clipper.clip(grads)) < 2.0)

    def test_large_norm_limit(self):
        grads = np.array([[1e6, 0.0]])
        clipped = AutoSClipping(1.0, gamma=0.01).clip(grads)
        assert norms(clipped)[0] == pytest.approx(1.0, rel=1e-4)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices)
    def test_sensitivity_bound(self, grads):
        clipper = AutoSClipping(1.5)
        assert np.all(norms(clipper.clip(grads)) <= clipper.sensitivity() + 1e-9)


class TestPsacClipping:
    def test_norm_bounded(self, rng):
        grads = rng.normal(size=(50, 8)) * rng.uniform(0.001, 100, size=(50, 1))
        clipper = PsacClipping(1.0, gamma=0.01)
        assert np.all(norms(clipper.clip(grads)) < 1.0)

    def test_tiny_gradients_attenuated(self):
        # ||clipped|| = C ||g||^2/(||g||^2 + gamma): a tiny gradient keeps a
        # tiny share of the budget instead of being inflated.
        tiny = np.array([[1e-4, 0.0]])
        clipped = PsacClipping(1.0, gamma=0.01).clip(tiny)
        assert norms(clipped)[0] < 1e-5

    def test_norm_monotone_in_input_norm(self):
        clipper = PsacClipping(1.0, gamma=0.01)
        small = clipper.clip(np.array([[0.05, 0.0]]))
        large = clipper.clip(np.array([[5.0, 0.0]]))
        assert norms(small)[0] < norms(large)[0]

    def test_zero_gradient_stays_zero(self):
        clipped = PsacClipping(1.0).clip(np.zeros((2, 3)))
        assert np.allclose(clipped, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(grad_matrices)
    def test_sensitivity_bound(self, grads):
        clipper = PsacClipping(2.0)
        assert np.all(norms(clipper.clip(grads)) <= clipper.sensitivity() + 1e-9)


class TestAdaptiveQuantileClipping:
    def test_threshold_moves_toward_quantile(self, rng):
        grads = rng.normal(size=(128, 4))  # norms ~ 2
        clipper = AdaptiveQuantileClipping(100.0, target_quantile=0.5, learning_rate=0.5)
        for _ in range(60):
            clipper.clip(grads)
        median_norm = float(np.median(norms(grads)))
        assert clipper.clip_norm == pytest.approx(median_norm, rel=0.3)

    def test_threshold_rises_when_too_small(self, rng):
        grads = rng.normal(size=(64, 4)) * 10
        clipper = AdaptiveQuantileClipping(0.01, target_quantile=0.5, learning_rate=0.5)
        before = clipper.clip_norm
        clipper.clip(grads)
        assert clipper.clip_norm > before

    def test_clip_respects_current_threshold(self, rng):
        grads = rng.normal(size=(32, 6)) * 100
        clipper = AdaptiveQuantileClipping(1.0)
        clipped = clipper.clip(grads)
        assert np.all(norms(clipped) <= 1.0 + 1e-9)
        assert clipper.sensitivity() == 1.0  # threshold used for this release

    def test_history_records_used_thresholds(self, rng):
        grads = rng.normal(size=(16, 3))
        clipper = AdaptiveQuantileClipping(2.0)
        clipper.clip(grads)
        clipper.clip(grads)
        assert len(clipper.history) == 2
        assert clipper.history[0] == 2.0

    def test_noisy_update_is_seedable(self, rng):
        grads = rng.normal(size=(32, 3))
        a = AdaptiveQuantileClipping(1.0, noise_std=1.0, rng=7)
        b = AdaptiveQuantileClipping(1.0, noise_std=1.0, rng=7)
        a.clip(grads)
        b.clip(grads)
        assert a.clip_norm == b.clip_norm


class TestClipWithNorms:
    """clip() is now a view onto clip_with_norms(); the returned norms must
    be the exact pre-clip per-sample L2 norms for every strategy."""

    @pytest.mark.parametrize(
        "clipper",
        [
            FlatClipping(0.5),
            AutoSClipping(0.5),
            PsacClipping(0.5),
            AdaptiveQuantileClipping(0.5),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_norms_match_pre_clip_norms(self, clipper, rng):
        grads = rng.normal(size=(12, 7))
        clipped, returned = clipper.clip_with_norms(grads)
        assert np.allclose(returned, norms(grads))
        assert clipped.shape == grads.shape

    def test_clip_equals_clip_with_norms(self, rng):
        grads = rng.normal(size=(12, 7))
        assert np.array_equal(
            FlatClipping(0.5).clip(grads), FlatClipping(0.5).clip_with_norms(grads)[0]
        )

    def test_per_layer_returns_total_norms(self, rng):
        from repro.privacy import PerLayerClipping

        grads = rng.normal(size=(6, 10))
        clipper = PerLayerClipping([slice(0, 4), slice(4, 10)], 0.3)
        _, returned = clipper.clip_with_norms(grads)
        assert np.allclose(returned, norms(grads))
