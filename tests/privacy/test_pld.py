"""Tests for the privacy-loss-distribution accountant (paper ref [53])."""

import pytest

from repro.privacy import RdpAccountant, gaussian_epsilon
from repro.privacy.pld import PldAccountant, PrivacyLossDistribution


class TestSingleRelease:
    def test_matches_exact_gaussian(self):
        """At q = 1 and one step, PLD must match the analytic Gaussian curve."""
        for sigma in (1.0, 2.0, 5.0):
            pld = PrivacyLossDistribution(sigma, 1.0, grid_step=1e-4)
            exact = gaussian_epsilon(sigma, 1e-5)
            assert pld.epsilon(1e-5, 1) == pytest.approx(exact, abs=3e-3)

    def test_pessimistic_never_below_exact(self):
        pld = PrivacyLossDistribution(1.5, 1.0, grid_step=1e-3)
        exact = gaussian_epsilon(1.5, 1e-5)
        assert pld.epsilon(1e-5, 1) >= exact - 1e-9

    def test_delta_monotone_in_eps(self):
        pld = PrivacyLossDistribution(1.0, 0.1, grid_step=1e-3)
        deltas = [pld.delta(eps, 10) for eps in (0.0, 0.5, 1.0, 2.0)]
        assert deltas == sorted(deltas, reverse=True)

    def test_subsampling_amplifies(self):
        full = PrivacyLossDistribution(1.0, 1.0, grid_step=1e-3)
        sub = PrivacyLossDistribution(1.0, 0.05, grid_step=1e-3)
        assert sub.epsilon(1e-5, 1) < full.epsilon(1e-5, 1)

    def test_invalid_steps(self):
        pld = PrivacyLossDistribution(1.0, 0.5, grid_step=1e-2)
        with pytest.raises(ValueError):
            pld.delta(1.0, 0)


class TestComposition:
    def test_epsilon_grows_with_steps(self):
        pld = PrivacyLossDistribution(1.0, 0.05, grid_step=1e-3)
        e10 = pld.epsilon(1e-5, 10)
        e100 = pld.epsilon(1e-5, 100)
        assert 0 < e10 < e100

    def test_tighter_than_rdp_at_fine_grid(self):
        """The point of numerical composition (Gopi et al.): beat RDP."""
        steps, sigma, q = 500, 1.0, 0.02
        acc = PldAccountant(sigma, q, grid_step=1e-4)
        acc.step(steps)
        rdp = RdpAccountant()
        rdp.step(sigma, q, num_steps=steps)
        assert acc.get_epsilon(1e-5) < rdp.get_epsilon(1e-5)

    def test_delta_epsilon_inverse_consistency(self):
        acc = PldAccountant(1.0, 0.05, grid_step=1e-3)
        acc.step(50)
        eps = acc.get_epsilon(1e-5)
        assert acc.get_delta(eps) <= 1e-5 * (1 + 1e-6)


class TestAccountantInterface:
    def test_zero_steps(self):
        acc = PldAccountant(1.0, 0.1)
        assert acc.get_epsilon(1e-5) == 0.0
        assert acc.get_delta(1.0) == 0.0

    def test_step_counting(self):
        acc = PldAccountant(1.0, 0.1)
        acc.step(3)
        acc.step()
        assert acc.steps == 4

    def test_invalid_step_count(self):
        with pytest.raises(ValueError):
            PldAccountant(1.0, 0.1).step(0)
