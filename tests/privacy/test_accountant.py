"""Tests for the RDP and naive Gaussian accountants."""

import pytest

from repro.privacy import GaussianAccountant, PrivacySpent, RdpAccountant


class TestRdpAccountant:
    def test_zero_steps_zero_epsilon(self):
        assert RdpAccountant().get_epsilon(1e-5) == 0.0

    def test_epsilon_grows_with_steps(self):
        acc = RdpAccountant()
        acc.step(1.0, 0.01, num_steps=100)
        e1 = acc.get_epsilon(1e-5)
        acc.step(1.0, 0.01, num_steps=900)
        e2 = acc.get_epsilon(1e-5)
        assert 0 < e1 < e2

    def test_batched_steps_equal_repeated_steps(self):
        a = RdpAccountant()
        a.step(1.2, 0.05, num_steps=50)
        b = RdpAccountant()
        for _ in range(50):
            b.step(1.2, 0.05)
        assert a.get_epsilon(1e-5) == pytest.approx(b.get_epsilon(1e-5))

    def test_total_steps(self):
        acc = RdpAccountant()
        acc.step(1.0, 0.1, num_steps=3)
        acc.step(2.0, 0.1, num_steps=4)
        assert acc.total_steps == 7
        assert len(acc.history) == 2

    def test_heterogeneous_noise_compose(self):
        acc = RdpAccountant()
        acc.step(0.8, 0.02, num_steps=10)
        acc.step(2.0, 0.02, num_steps=10)
        assert acc.get_epsilon(1e-5) > 0

    def test_cost_of_is_pure_pre_composition(self):
        # The "what if" projection equals step-then-get_epsilon bit-for-bit
        # and leaves the accountant untouched (the admission-control
        # contract: projecting a job's cost must not spend anything).
        acc = RdpAccountant()
        acc.step(1.0, 0.01, num_steps=50)
        history = list(acc.history)
        projected = acc.cost_of(1.2, 0.02, 200, delta=1e-5)
        assert acc.history == history
        stepped = RdpAccountant()
        stepped.step(1.0, 0.01, num_steps=50)
        stepped.step(1.2, 0.02, num_steps=200)
        assert projected == stepped.get_epsilon(1e-5)

    def test_cost_of_validation(self):
        with pytest.raises(ValueError, match="num_steps"):
            RdpAccountant().cost_of(1.0, 0.01, 0, delta=1e-5)

    def test_privacy_spent_record(self):
        acc = RdpAccountant()
        acc.step(1.0, 0.01, num_steps=10)
        spent = acc.get_privacy_spent(1e-5, delta_prime=0.1)
        assert isinstance(spent, PrivacySpent)
        assert spent.delta == 1e-5
        assert spent.delta_prime == 0.1
        assert spent.total_delta == pytest.approx(1e-5 + 0.1)
        assert spent.best_alpha in acc.alphas

    def test_privacy_spent_str(self):
        spent = PrivacySpent(1.234, 1e-5, 0.05)
        text = str(spent)
        assert "1.234" in text and "delta'" in text

    def test_rdp_curve_copy_is_isolated(self):
        acc = RdpAccountant()
        acc.step(1.0, 0.1)
        curve = acc.rdp_curve()
        curve[:] = 0
        assert acc.get_epsilon(1e-5) > 0

    def test_invalid_args(self):
        acc = RdpAccountant()
        with pytest.raises(ValueError):
            acc.step(0.0, 0.1)
        with pytest.raises(ValueError):
            acc.step(1.0, 1.5)
        with pytest.raises(ValueError):
            acc.step(1.0, 0.1, num_steps=0)


class TestGaussianAccountant:
    def test_zero_steps(self):
        acc = GaussianAccountant(noise_multiplier=1.0)
        assert acc.get_epsilon(1e-5) == 0.0

    def test_basic_vs_advanced(self):
        # Advanced composition only beats basic when the per-step epsilon is
        # well below 1, i.e. at large noise multipliers.
        acc = GaussianAccountant(noise_multiplier=200.0)
        acc.step(num_steps=200)
        basic = acc.get_epsilon(1e-5, method="basic")
        advanced = acc.get_epsilon(1e-5, method="advanced")
        assert advanced < basic

    def test_advanced_loses_for_loud_mechanisms(self):
        # Sanity check of the regime boundary: with per-step epsilon >> 1 the
        # k*eps*(e^eps - 1) term dominates and basic composition wins.
        acc = GaussianAccountant(noise_multiplier=2.0)
        acc.step(num_steps=200)
        assert acc.get_epsilon(1e-5, method="advanced") > acc.get_epsilon(
            1e-5, method="basic"
        )

    def test_rdp_beats_naive_for_many_steps(self):
        steps, sigma, q = 500, 1.0, 1.0
        naive = GaussianAccountant(noise_multiplier=sigma)
        naive.step(num_steps=steps)
        rdp = RdpAccountant()
        rdp.step(sigma, q, num_steps=steps)
        assert rdp.get_epsilon(1e-5) < naive.get_epsilon(1e-5, method="advanced")

    def test_unknown_method(self):
        acc = GaussianAccountant(noise_multiplier=1.0)
        acc.step()
        with pytest.raises(ValueError, match="unknown composition"):
            acc.get_epsilon(1e-5, method="bogus")
