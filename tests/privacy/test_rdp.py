"""Tests for RDP of the (subsampled) Gaussian mechanism and DP conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    DEFAULT_ALPHAS,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_dp,
)


class TestRdpGaussian:
    def test_formula(self):
        assert rdp_gaussian(10, 2.0) == pytest.approx(10 / 8.0)

    def test_rejects_alpha_le_one(self):
        with pytest.raises(ValueError):
            rdp_gaussian(1.0, 1.0)


class TestSubsampledGaussian:
    def test_q_zero_is_free(self):
        rdp = rdp_subsampled_gaussian(0.0, 1.0, [2, 3, 4])
        assert np.allclose(rdp, 0.0)

    def test_q_one_matches_gaussian(self):
        alphas = [2, 5, 10]
        rdp = rdp_subsampled_gaussian(1.0, 1.5, alphas)
        expected = [rdp_gaussian(a, 1.5) for a in alphas]
        assert np.allclose(rdp, expected)

    def test_subsampling_amplifies(self):
        alphas = [2, 4, 8, 16]
        full = np.array([rdp_gaussian(a, 1.0) for a in alphas])
        sub = rdp_subsampled_gaussian(0.01, 1.0, alphas)
        assert np.all(sub < full)

    def test_small_q_quadratic_scaling(self):
        # For small q, rho(2) ~ 2 * q^2 * (e^{1/sigma^2} - 1)-ish: halving q
        # should shrink rho(2) by ~4x.
        a = rdp_subsampled_gaussian(0.02, 2.0, [2])[0]
        b = rdp_subsampled_gaussian(0.01, 2.0, [2])[0]
        assert a / b == pytest.approx(4.0, rel=0.15)

    def test_monotone_in_alpha(self):
        rdp = rdp_subsampled_gaussian(0.05, 1.0, list(range(2, 40)))
        assert np.all(np.diff(rdp) >= -1e-12)

    def test_monotone_in_sigma(self):
        noisy = rdp_subsampled_gaussian(0.05, 4.0, [2, 8, 32])
        loud = rdp_subsampled_gaussian(0.05, 0.5, [2, 8, 32])
        assert np.all(noisy < loud)

    def test_fractional_matches_integer_at_integer_orders(self):
        for q, sigma in [(0.01, 1.0), (0.1, 2.0), (0.3, 0.8)]:
            ints = rdp_subsampled_gaussian(q, sigma, [2, 3, 5, 10])
            fracs = rdp_subsampled_gaussian(
                q, sigma, [2 + 1e-9, 3 + 1e-9, 5 + 1e-9, 10 + 1e-9]
            )
            assert np.allclose(ints, fracs, rtol=1e-6)

    def test_fractional_orders_interpolate(self):
        lo, mid, hi = rdp_subsampled_gaussian(0.05, 1.5, [2, 2.5, 3])
        assert lo < mid < hi

    def test_fractional_orders_near_one(self):
        """Orders just above 1 must give small positive RDP."""
        rdp = rdp_subsampled_gaussian(0.01, 1.0, [1.1, 1.5])
        assert np.all(rdp > 0)
        assert np.all(rdp < rdp_subsampled_gaussian(0.01, 1.0, [2])[0] * 2)

    def test_fractional_grid_never_hurts_epsilon(self):
        """Adding fractional orders can only improve (reduce) epsilon."""
        ints = list(range(2, 64))
        rdp_int = 100 * rdp_subsampled_gaussian(0.02, 1.0, ints)
        eps_int, _ = rdp_to_dp(ints, rdp_int, 1e-5)
        rdp_full = 100 * rdp_subsampled_gaussian(0.02, 1.0, DEFAULT_ALPHAS)
        eps_full, _ = rdp_to_dp(DEFAULT_ALPHAS, rdp_full, 1e-5)
        assert eps_full <= eps_int + 1e-12

    def test_rejects_order_below_one(self):
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.1, 1.0, [0.5])

    def test_alpha_two_closed_form(self):
        # At alpha = 2 the binomial expansion collapses to
        # rho(2) = ln(1 + q^2 (e^{1/sigma^2} - 1)).
        for q, sigma in [(0.01, 1.0), (0.1, 2.0), (0.5, 0.7)]:
            got = rdp_subsampled_gaussian(q, sigma, [2])[0]
            expected = np.log(1 + q**2 * (np.exp(1 / sigma**2) - 1))
            assert got == pytest.approx(expected, rel=1e-10)

    def test_small_q_composed_epsilon_magnitude(self):
        # Small-q heuristic: rho(alpha) ~ q^2 alpha / sigma^2, so T=1000
        # steps at q=0.01, sigma=1 compose to epsilon ~ 0.1a + ln(1/delta)/(a-1)
        # minimised near a ~ 12, i.e. epsilon ~ 2.2.
        rdp = 1000 * rdp_subsampled_gaussian(0.01, 1.0, DEFAULT_ALPHAS)
        eps, alpha = rdp_to_dp(DEFAULT_ALPHAS, rdp, 1e-5)
        assert eps == pytest.approx(2.2, abs=0.4)
        assert 5 <= alpha <= 25


class TestRdpToDp:
    def test_single_order(self):
        eps, alpha = rdp_to_dp([10], [0.5], 1e-5)
        assert alpha == 10
        assert eps > 0

    def test_picks_minimising_order(self):
        alphas = [2, 10, 100]
        rdp = [0.01, 0.05, 0.5]
        eps, alpha = rdp_to_dp(alphas, rdp, 1e-5)
        candidates = [rdp_to_dp([a], [r], 1e-5)[0] for a, r in zip(alphas, rdp)]
        assert eps == pytest.approx(min(candidates))

    def test_epsilon_clamped_at_zero(self):
        eps, _ = rdp_to_dp([1000], [1e-12], 0.5)
        assert eps == 0.0

    def test_smaller_delta_larger_epsilon(self):
        rdp = rdp_subsampled_gaussian(0.02, 1.0, DEFAULT_ALPHAS)
        eps_tight, _ = rdp_to_dp(DEFAULT_ALPHAS, 100 * rdp, 1e-9)
        eps_loose, _ = rdp_to_dp(DEFAULT_ALPHAS, 100 * rdp, 1e-3)
        assert eps_tight > eps_loose

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            rdp_to_dp([2, 3], [0.1], 1e-5)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.001, 0.5), st.floats(0.5, 10.0), st.integers(1, 500))
    def test_epsilon_monotone_in_steps(self, q, sigma, steps):
        rdp = rdp_subsampled_gaussian(q, sigma, DEFAULT_ALPHAS)
        eps1, _ = rdp_to_dp(DEFAULT_ALPHAS, steps * rdp, 1e-5)
        eps2, _ = rdp_to_dp(DEFAULT_ALPHAS, (steps + 100) * rdp, 1e-5)
        assert eps2 >= eps1


class TestSubsampledCurveCache:
    """The memoized curve is bounded and evicts least-recently-used first."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        from repro.privacy.rdp import subsampled_curve_cache_clear

        subsampled_curve_cache_clear()
        yield
        subsampled_curve_cache_clear()

    def test_cache_bound_is_explicit(self):
        from repro.privacy.rdp import (
            SUBSAMPLED_CURVE_CACHE_SIZE,
            subsampled_curve_cache_info,
        )

        info = subsampled_curve_cache_info()
        assert info.maxsize == SUBSAMPLED_CURVE_CACHE_SIZE
        assert SUBSAMPLED_CURVE_CACHE_SIZE >= 1

    def test_repeat_parameters_hit_the_cache(self):
        from repro.privacy.rdp import subsampled_curve_cache_info

        first = rdp_subsampled_gaussian(0.01, 1.1, (2.0, 3.0))
        again = rdp_subsampled_gaussian(0.01, 1.1, (2.0, 3.0))
        np.testing.assert_array_equal(first, again)
        info = subsampled_curve_cache_info()
        assert info.hits == 1 and info.misses == 1
        # The public wrapper returns a copy: mutating it cannot poison
        # the memo for later callers.
        again[:] = -1.0
        clean = rdp_subsampled_gaussian(0.01, 1.1, (2.0, 3.0))
        np.testing.assert_array_equal(clean, first)

    def test_cache_never_exceeds_bound_and_evicts_lru(self):
        from repro.privacy.rdp import (
            SUBSAMPLED_CURVE_CACHE_SIZE,
            subsampled_curve_cache_info,
        )

        size = SUBSAMPLED_CURVE_CACHE_SIZE
        # Cheap single-order curves so filling the cache stays fast.
        qs = [0.001 + 0.4 * i / (size + 8) for i in range(size + 8)]
        for q in qs[:size]:
            rdp_subsampled_gaussian(q, 1.0, (2.0,))
        info = subsampled_curve_cache_info()
        assert info.currsize == size

        # Touch the oldest entry so it becomes most-recently-used...
        rdp_subsampled_gaussian(qs[0], 1.0, (2.0,))
        assert subsampled_curve_cache_info().hits == 1

        # ...then overflow the cache: qs[1] is now the LRU and must go.
        for q in qs[size:]:
            rdp_subsampled_gaussian(q, 1.0, (2.0,))
        info = subsampled_curve_cache_info()
        assert info.currsize == size  # bounded, not grown

        before = subsampled_curve_cache_info()
        rdp_subsampled_gaussian(qs[0], 1.0, (2.0,))  # protected: still cached
        assert subsampled_curve_cache_info().hits == before.hits + 1
        rdp_subsampled_gaussian(qs[1], 1.0, (2.0,))  # evicted: recomputed
        assert subsampled_curve_cache_info().misses == before.misses + 1
