"""Tests for Gaussian-mechanism noise calibration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    analytic_gaussian_delta,
    analytic_gaussian_sigma,
    classic_gaussian_sigma,
    gaussian_epsilon,
)


class TestClassicCalibration:
    def test_formula(self):
        sigma = classic_gaussian_sigma(0.5, 1e-5, 2.0)
        assert sigma == pytest.approx(2.0 * math.sqrt(2 * math.log(1.25e5)) / 0.5)

    def test_rejects_epsilon_ge_one(self):
        with pytest.raises(ValueError, match="epsilon < 1"):
            classic_gaussian_sigma(1.5, 1e-5)

    def test_monotone_in_epsilon(self):
        assert classic_gaussian_sigma(0.1, 1e-5) > classic_gaussian_sigma(0.9, 1e-5)


class TestAnalyticCalibration:
    def test_delta_decreases_with_sigma(self):
        assert analytic_gaussian_delta(0.5, 1.0) > analytic_gaussian_delta(5.0, 1.0)

    def test_known_reference_value(self):
        # Balle & Wang: for eps=1, delta=1e-5 the analytic sigma ~ 3.73 <
        # classic-style sqrt(2 ln(1.25/delta)) ~ 4.84.
        sigma = analytic_gaussian_sigma(1.0, 1e-5)
        assert 3.0 < sigma < 4.2
        assert sigma < math.sqrt(2 * math.log(1.25e5))

    def test_calibration_is_tight(self):
        for eps in (0.1, 1.0, 5.0):
            sigma = analytic_gaussian_sigma(eps, 1e-6)
            assert analytic_gaussian_delta(sigma, eps) <= 1e-6 * (1 + 1e-6)
            assert analytic_gaussian_delta(sigma * 0.99, eps) > 1e-6

    def test_sensitivity_scales_linearly(self):
        base = analytic_gaussian_sigma(1.0, 1e-5, sensitivity=1.0)
        assert analytic_gaussian_sigma(1.0, 1e-5, sensitivity=3.0) == pytest.approx(
            3 * base, rel=1e-6
        )


class TestGaussianEpsilon:
    def test_round_trip_with_calibration(self):
        for eps in (0.3, 1.0, 4.0):
            sigma = analytic_gaussian_sigma(eps, 1e-5)
            back = gaussian_epsilon(sigma, 1e-5)
            assert back == pytest.approx(eps, rel=1e-4)

    def test_monotone_in_sigma(self):
        assert gaussian_epsilon(0.7, 1e-5) > gaussian_epsilon(3.0, 1e-5)

    def test_huge_sigma_gives_tiny_epsilon(self):
        assert gaussian_epsilon(1000.0, 1e-5) < 0.02

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.3, 50.0), st.floats(1e-9, 1e-2))
    def test_epsilon_positive_and_finite(self, sigma, delta):
        eps = gaussian_epsilon(sigma, delta)
        assert eps >= 0.0
        assert math.isfinite(eps)
