"""Release-ledger tests: hash-chain integrity, tamper evidence, replay
verification against a fresh accountant, and checkpoint survival."""

import dataclasses

import pytest

from repro.privacy import (
    GENESIS_HASH,
    LedgerError,
    RdpAccountant,
    ReleaseLedger,
    ReleaseRecord,
    verify_ledger,
)


def _filled_ledger(n: int = 5, accountant: RdpAccountant | None = None) -> ReleaseLedger:
    ledger = ReleaseLedger()
    for _ in range(n):
        if accountant is not None:
            accountant.step(1.2, 0.05)
        ledger.record_release(
            mechanism="gaussian",
            sigma=1.2,
            sensitivity=0.1,
            sample_rate=0.05,
            accountant=accountant,
        )
    return ledger


class TestChain:
    def test_empty_ledger_head_is_genesis(self):
        ledger = ReleaseLedger()
        assert ledger.head == GENESIS_HASH
        ledger.verify_chain()  # vacuously intact

    def test_records_chain_to_predecessor(self):
        ledger = _filled_ledger(3)
        assert ledger.entries[0].prev_hash == GENESIS_HASH
        assert ledger.entries[1].prev_hash == ledger.entries[0].entry_hash
        assert ledger.entries[2].prev_hash == ledger.entries[1].entry_hash
        assert ledger.head == ledger.entries[2].entry_hash
        ledger.verify_chain()

    def test_hash_covers_every_payload_field(self):
        ledger = _filled_ledger(1)
        record = ledger.entries[0]
        for change in (
            {"sigma": 9.9},
            {"sensitivity": 9.9},
            {"sample_rate": 0.9},
            {"num_steps": 7},
            {"mechanism": "laplace"},
            {"meta": {"beta": 0.5}},
        ):
            tampered = dataclasses.replace(record, **change)
            assert tampered.compute_hash() != record.entry_hash

    def test_edit_breaks_chain(self):
        ledger = _filled_ledger(4)
        ledger.entries[1] = dataclasses.replace(ledger.entries[1], sigma=99.0)
        with pytest.raises(LedgerError, match="hash mismatch"):
            ledger.verify_chain()

    def test_deletion_breaks_chain(self):
        ledger = _filled_ledger(4)
        del ledger.entries[1]
        with pytest.raises(LedgerError):
            ledger.verify_chain()

    def test_reorder_breaks_chain(self):
        ledger = _filled_ledger(4)
        ledger.entries[1], ledger.entries[2] = ledger.entries[2], ledger.entries[1]
        with pytest.raises(LedgerError):
            ledger.verify_chain()

    def test_delta_validation(self):
        with pytest.raises(ValueError, match="delta"):
            ReleaseLedger(delta=0.0)


class TestReplayVerification:
    def test_verify_matches_fresh_accountant_to_1e9(self):
        accountant = RdpAccountant()
        ledger = _filled_ledger(25, accountant)
        verification = verify_ledger(ledger, accountant, tol=1e-9)
        assert verification.ok
        assert verification.num_entries == 25
        assert verification.replayed_epsilon == pytest.approx(
            accountant.get_epsilon(1e-5), abs=1e-9
        )
        assert verification.recorded_epsilon == ledger.entries[-1].epsilon

    def test_epsilon_trajectory_is_monotone(self):
        accountant = RdpAccountant()
        ledger = _filled_ledger(10, accountant)
        trajectory = ledger.epsilon_trajectory()
        assert [steps for steps, _ in trajectory] == list(range(1, 11))
        eps = [e for _, e in trajectory]
        assert eps == sorted(eps)

    def test_tampered_epsilon_fails_replay(self):
        accountant = RdpAccountant()
        ledger = _filled_ledger(3, accountant)
        bad = dataclasses.replace(ledger.entries[-1], epsilon=0.123)
        bad = dataclasses.replace(bad, entry_hash=bad.compute_hash())
        # Re-chain so only the replay check (not the hash chain) can catch it.
        ledger.entries[-1] = bad
        with pytest.raises(LedgerError, match="replay"):
            verify_ledger(ledger, tol=1e-9)
        verification = verify_ledger(ledger, strict=False)
        assert not verification.ok and "replay" in verification.error

    def test_missing_releases_fail_live_accountant_check(self):
        accountant = RdpAccountant()
        ledger = _filled_ledger(3, accountant)
        accountant.step(1.2, 0.05)  # a release the ledger never saw
        with pytest.raises(LedgerError, match="live accountant"):
            verify_ledger(ledger, accountant)

    def test_broken_chain_reported_not_raised_when_lenient(self):
        ledger = _filled_ledger(3)
        ledger.entries[0] = dataclasses.replace(ledger.entries[0], sigma=5.0)
        verification = verify_ledger(ledger, strict=False)
        assert not verification.ok
        assert "FAILED" in str(verification)

    def test_zero_sigma_release_replays_like_the_optimizers(self):
        # The optimizers account sigma=0 as max(sigma, 1e-12); the replay
        # must mirror that or a noise-free ablation would never verify.
        accountant = RdpAccountant()
        ledger = ReleaseLedger()
        accountant.step(1e-12, 0.05)
        ledger.record_release(
            mechanism="gaussian", sigma=0.0, sensitivity=0.1,
            sample_rate=0.05, accountant=accountant,
        )
        assert verify_ledger(ledger, accountant).ok

    def test_empty_ledger_verifies(self):
        verification = verify_ledger(ReleaseLedger())
        assert verification.ok and verification.replayed_epsilon is None


class TestSerialisation:
    def test_state_round_trip_preserves_chain(self):
        accountant = RdpAccountant()
        ledger = _filled_ledger(6, accountant)
        clone = ReleaseLedger()
        clone.load_state_dict(ledger.state_dict())
        assert clone.head == ledger.head
        assert clone.delta == ledger.delta
        assert [r.to_dict() for r in clone.entries] == [
            r.to_dict() for r in ledger.entries
        ]
        assert verify_ledger(clone, accountant).ok

    def test_load_rejects_tampered_state(self):
        ledger = _filled_ledger(3)
        state = ledger.state_dict()
        state["entries"][1]["sigma"] = 42.0
        with pytest.raises(LedgerError):
            ReleaseLedger().load_state_dict(state)

    def test_record_round_trip(self):
        record = _filled_ledger(1).entries[0]
        assert ReleaseRecord.from_dict(record.to_dict()) == record


class TestNamespace:
    def test_default_namespace_absent_from_hashed_payload(self):
        # Back-compat: pre-namespace ledgers must keep their exact hashes,
        # so the empty default may not appear in the hashed payload at all.
        record = _filled_ledger(1).entries[0]
        assert record.namespace == ""
        assert "namespace" not in record.payload()
        assert "namespace" not in record.to_dict()

    def test_pre_namespace_state_still_verifies(self):
        ledger = _filled_ledger(3)
        state = ledger.state_dict()
        assert "namespace" not in state
        clone = ReleaseLedger()
        clone.load_state_dict(state)  # re-verifies the chain on load
        assert clone.namespace == ""
        assert clone.head == ledger.head

    def test_namespace_is_hashed_when_set(self):
        ledger = ReleaseLedger(namespace="alice")
        record = ledger.record_release(
            mechanism="gaussian", sigma=1.0, sensitivity=1.0, sample_rate=0.01
        )
        assert record.namespace == "alice"
        assert record.payload()["namespace"] == "alice"
        stripped = dataclasses.replace(record, namespace="")
        assert stripped.compute_hash() != record.entry_hash

    def test_per_record_namespace_override(self):
        ledger = ReleaseLedger(namespace="alice")
        record = ledger.record_release(
            mechanism="gaussian", sigma=1.0, sensitivity=1.0,
            sample_rate=0.01, namespace="bob",
        )
        assert record.namespace == "bob"
        ledger.verify_chain()

    def test_state_round_trip_preserves_namespace(self):
        ledger = ReleaseLedger(namespace="alice")
        ledger.record_release(
            mechanism="gaussian", sigma=1.0, sensitivity=1.0, sample_rate=0.01
        )
        state = ledger.state_dict()
        assert state["namespace"] == "alice"
        clone = ReleaseLedger()
        clone.load_state_dict(state)
        assert clone.namespace == "alice"
        assert clone.entries[0].namespace == "alice"
        assert clone.head == ledger.head


class TestAnnotations:
    def test_annotation_spends_nothing(self):
        accountant = RdpAccountant()
        ledger = ReleaseLedger()
        accountant.step(1.2, 0.05)
        ledger.record_release(
            mechanism="gaussian", sigma=1.2, sensitivity=0.1,
            sample_rate=0.05, accountant=accountant,
        )
        note = ledger.record_annotation(
            kind="refused", accountant=accountant, meta={"job_id": "j1"}
        )
        assert note.is_annotation and note.num_steps == 0
        assert note.mechanism == "annotation.refused"
        assert note.meta["job_id"] == "j1"
        # Replay skips the annotation: cumulative ε is the release's alone.
        verification = verify_ledger(ledger, accountant, tol=1e-9)
        assert verification.ok
        assert verification.replayed_epsilon == pytest.approx(
            accountant.get_epsilon(1e-5), abs=1e-9
        )

    def test_annotation_epsilon_is_still_audited(self):
        accountant = RdpAccountant()
        ledger = ReleaseLedger()
        accountant.step(1.2, 0.05)
        ledger.record_release(
            mechanism="gaussian", sigma=1.2, sensitivity=0.1,
            sample_rate=0.05, accountant=accountant,
        )
        ledger.record_annotation(kind="refused", accountant=accountant)
        bad = dataclasses.replace(ledger.entries[-1], epsilon=99.0)
        ledger.entries[-1] = dataclasses.replace(bad, entry_hash=bad.compute_hash())
        with pytest.raises(LedgerError, match="replay"):
            verify_ledger(ledger)

    def test_record_release_rejects_zero_steps(self):
        # num_steps == 0 is reserved for annotations.
        with pytest.raises(ValueError, match="num_steps"):
            ReleaseLedger().record_release(
                mechanism="gaussian", sigma=1.0, sensitivity=1.0,
                sample_rate=0.01, num_steps=0,
            )
