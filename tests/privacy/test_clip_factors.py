"""``clip_factors`` contract: ``clip(G)[i] == clip_factors(norms)[i] * G[i]``.

The ghost fast path never materializes per-sample gradients, so the only
thing a strategy can apply is one scalar factor per sample, derived from
the ghost-computed norms.  These tests pin the factor formulas to the
materialized ``clip_with_norms`` reference for every ghost-capable
strategy, including the adaptive strategy's observe/lot-freeze semantics.
"""

import numpy as np
import pytest

from repro.privacy.clipping import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    GhostClippingUnsupportedError,
    PerLayerClipping,
    PsacClipping,
)


def make_grads(rng, n=12, d=9):
    grads = rng.normal(size=(n, d)) * rng.uniform(0.1, 4.0, size=(n, 1))
    grads[0] = 0.0  # zero gradient must not divide by zero
    return grads


@pytest.mark.parametrize(
    "make",
    [
        lambda: FlatClipping(1.0),
        lambda: AutoSClipping(1.0),
        lambda: PsacClipping(1.0),
        lambda: AdaptiveQuantileClipping(1.0),
    ],
    ids=["flat", "autos", "psac", "adaptive"],
)
def test_factors_reproduce_clip(make):
    rng = np.random.default_rng(0)
    grads = make_grads(rng)
    ref, norms = make().clip_with_norms(grads)
    factors = make().clip_factors(norms)
    assert np.allclose(factors[:, None] * grads, ref, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize(
    "strategy",
    [FlatClipping(2.0), AutoSClipping(2.0), PsacClipping(2.0), AdaptiveQuantileClipping(2.0)],
    ids=["flat", "autos", "psac", "adaptive"],
)
def test_supports_ghost_flag(strategy):
    assert strategy.supports_ghost


def test_adaptive_factors_observe_norms():
    # clip_factors must update the threshold exactly like clip_with_norms:
    # factors at the pre-observation threshold, then one geometric update.
    rng = np.random.default_rng(1)
    grads = make_grads(rng)
    norms = np.linalg.norm(grads, axis=1)

    via_clip = AdaptiveQuantileClipping(1.0, target_quantile=0.5)
    via_clip.clip_with_norms(grads)

    via_factors = AdaptiveQuantileClipping(1.0, target_quantile=0.5)
    factors = via_factors.clip_factors(norms)

    assert via_factors.clip_norm == via_clip.clip_norm
    assert np.allclose(factors, 1.0 / np.maximum(1.0, norms / 1.0))


def test_adaptive_factors_lot_freeze():
    # Mid-lot the threshold is frozen: several clip_factors calls inside one
    # begin_lot/end_lot bracket all use the same C, and the single update at
    # end_lot pools the norms — identical to the materialized microbatch path.
    rng = np.random.default_rng(2)
    chunks = [make_grads(rng, n=5) for _ in range(3)]

    ref = AdaptiveQuantileClipping(1.0)
    ref.begin_lot()
    ref_factors = []
    for chunk in chunks:
        clipped, norms = ref.clip_with_norms(chunk)
        ref_factors.append(clipped[:, 0] / np.where(chunk[:, 0] == 0, 1.0, chunk[:, 0]))
    ref.end_lot()

    ghost = AdaptiveQuantileClipping(1.0)
    ghost.begin_lot()
    frozen = ghost.clip_norm
    for chunk in chunks:
        norms = np.linalg.norm(chunk, axis=1)
        ghost.clip_factors(norms)
        assert ghost.clip_norm == frozen  # frozen mid-lot
    ghost.end_lot()

    assert ghost.clip_norm == ref.clip_norm


def test_per_layer_raises_ghost_unsupported():
    strategy = PerLayerClipping([slice(0, 3), slice(3, 6)], 1.0)
    assert not strategy.supports_ghost
    with pytest.raises(GhostClippingUnsupportedError, match="materialize"):
        strategy.clip_factors(np.ones(4))


def test_ghost_unsupported_is_value_error():
    # Callers that only catch ValueError still see the failure.
    assert issubclass(GhostClippingUnsupportedError, ValueError)
