"""Tests for federated training with private client releases."""

import numpy as np
import pytest

from repro.core.federated import FederatedTrainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression


@pytest.fixture(scope="module")
def shards_and_test():
    data = make_mnist_like(500, rng=0, size=16)
    train, test = train_test_split(data, rng=0)
    bounds = np.linspace(0, len(train), 5).astype(int)
    shards = [train.subset(np.arange(lo, hi)) for lo, hi in zip(bounds, bounds[1:])]
    return shards, test


def make_trainer(shards, scheme, **kwargs):
    model = build_logistic_regression((1, 16, 16), rng=0)
    defaults = dict(
        learning_rate=4.0,
        clipping=0.1,
        noise_multiplier=1.0,
        local_batch_size=32,
        rng=1,
    )
    defaults.update(kwargs)
    return FederatedTrainer(model, shards, scheme=scheme, **defaults)


class TestFederatedTrainer:
    def test_nonprivate_learns(self, shards_and_test):
        shards, test = shards_and_test
        trainer = make_trainer(shards, "none")
        trainer.train(80)
        # C = 0.1 clips every client's release, so 80 rounds only gets
        # partway; chance level is 0.1.
        assert trainer.model.accuracy(test.x, test.y) > 0.3

    def test_geodp_learns(self, shards_and_test):
        shards, test = shards_and_test
        trainer = make_trainer(shards, "geodp", beta=0.1)
        trainer.train(80)
        assert trainer.model.accuracy(test.x, test.y) > 0.2

    def test_dp_accountants_track_participation(self, shards_and_test):
        shards, _ = shards_and_test
        trainer = make_trainer(shards, "dp", clients_per_round=2)
        trainer.train(10)
        participations = [acc.total_steps for acc in trainer.accountants]
        assert sum(participations) == 20  # 10 rounds x 2 clients
        epsilons = trainer.client_epsilons(1e-5)
        assert all(e >= 0 for e in epsilons)
        assert any(e > 0 for e in epsilons)

    def test_no_privacy_spends_nothing(self, shards_and_test):
        shards, _ = shards_and_test
        trainer = make_trainer(shards, "none")
        trainer.train(5)
        assert all(e == 0.0 for e in trainer.client_epsilons(1e-5))

    def test_round_returns_aggregate(self, shards_and_test):
        shards, _ = shards_and_test
        trainer = make_trainer(shards, "geodp")
        aggregate = trainer.round()
        assert aggregate.shape == (trainer.model.num_params,)
        assert trainer.rounds_run == 1

    def test_client_sampling(self, shards_and_test):
        shards, _ = shards_and_test
        trainer = make_trainer(shards, "dp", clients_per_round=1)
        trainer.train(3)
        assert sum(acc.total_steps for acc in trainer.accountants) == 3

    def test_invalid_configuration(self, shards_and_test):
        shards, _ = shards_and_test
        model = build_logistic_regression((1, 16, 16), rng=0)
        with pytest.raises(ValueError, match="scheme"):
            FederatedTrainer(model, shards, scheme="secret")
        with pytest.raises(ValueError, match="clients_per_round"):
            FederatedTrainer(model, shards, clients_per_round=99)
        with pytest.raises(ValueError, match="client shard"):
            FederatedTrainer(model, [])

    def test_deterministic_given_seed(self, shards_and_test):
        shards, _ = shards_and_test

        def run():
            trainer = make_trainer(shards, "geodp", rng=7)
            trainer.train(3)
            return trainer.model.get_params()

        assert np.allclose(run(), run())
