"""Tests for Theorem 1's efficiency-difference decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import efficiency_difference, expected_item_a, model_efficiency
from repro.core.perturbation import perturb_dp


class TestModelEfficiency:
    def test_zero_at_optimum(self, rng):
        w = rng.normal(size=10)
        assert model_efficiency(w, w) == 0.0

    def test_known_value(self):
        assert model_efficiency([1.0, 2.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            model_efficiency(np.zeros(3), np.zeros(4))


class TestEfficiencyDifference:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.floats(0.01, 2.0))
    def test_decomposition_matches_direct_gap(self, seed, eta):
        """Theorem 1: eta^2 * A + 2 eta * B equals the directly computed gap."""
        rng = np.random.default_rng(seed)
        w_t = rng.normal(size=12)
        w_star = rng.normal(size=12)
        g = rng.normal(size=12)
        g_noisy = g + rng.normal(size=12) * 0.3
        out = efficiency_difference(w_t, w_star, g, g_noisy, eta)
        assert out["total"] == pytest.approx(out["direct"], rel=1e-8, abs=1e-10)

    def test_no_noise_zero_gap(self, rng):
        g = rng.normal(size=6)
        out = efficiency_difference(rng.normal(size=6), rng.normal(size=6), g, g, 0.5)
        assert out["item_a"] == 0.0
        assert out["item_b"] == 0.0
        assert out["total"] == 0.0

    def test_expected_item_a_positive(self):
        """Corollary 1: E[Item A] > 0 whenever noise is added, so DP-SGD
        cannot stably stay at the optimum."""
        assert expected_item_a(1.0, 0.1, 256, 1000) > 0
        assert expected_item_a(0.0, 0.1, 256, 1000) == 0.0

    def test_expected_item_a_empirical(self, rng):
        """Monte-Carlo mean of Item A matches d * (C sigma / B)^2."""
        d, clip, sigma, batch = 400, 0.5, 1.0, 32
        g = rng.normal(size=d) * 0.001
        items = []
        for _ in range(3000):
            noisy = perturb_dp(g, clip, sigma, batch, rng, clip=False)
            items.append(float(np.sum(noisy**2) - np.sum(g**2)))
        expected = expected_item_a(sigma, clip, batch, d)
        assert np.mean(items) == pytest.approx(expected, rel=0.05)

    def test_item_a_scaling_corollary2(self):
        """Corollary 2's Item-A knobs: smaller C, larger B reduce E[Item A]."""
        base = expected_item_a(1.0, 0.2, 128, 500)
        assert expected_item_a(1.0, 0.1, 128, 500) < base
        assert expected_item_a(1.0, 0.2, 512, 500) < base

    def test_item_b_zero_mean_but_nonvanishing_spread(self, rng):
        """Item B has zero mean (unbiased noise) but its spread is what the
        clipping/learning-rate knobs cannot remove (Corollary 2)."""
        w_t = rng.normal(size=100)
        w_star = rng.normal(size=100)
        g = rng.normal(size=100) * 0.01
        items_b = []
        for _ in range(2000):
            noisy = perturb_dp(g, 0.1, 1.0, 64, rng, clip=False)
            items_b.append(float(np.dot(noisy - g, w_star - w_t)))
        assert np.mean(items_b) == pytest.approx(0.0, abs=3 * np.std(items_b) / 40)
        assert np.std(items_b) > 0
