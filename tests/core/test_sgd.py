"""Tests for SGD / Adam / DP-Adam optimizers."""

import numpy as np
import pytest

from repro.core import AdamOptimizer, DpAdamOptimizer, SgdOptimizer
from repro.privacy import RdpAccountant


def quadratic_grad(params):
    """Gradient of f(w) = 0.5 ||w - 3||^2."""
    return params - 3.0


class TestSgdOptimizer:
    def test_plain_update(self):
        opt = SgdOptimizer(0.1)
        new = opt.step(np.array([1.0, 2.0]), np.array([0.5, -0.5]))
        assert np.allclose(new, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        opt = SgdOptimizer(0.3)
        w = np.zeros(4)
        for _ in range(60):
            w = opt.step(w, quadratic_grad(w))
        assert np.allclose(w, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        plain, heavy = SgdOptimizer(0.02), SgdOptimizer(0.02, momentum=0.9)
        w1 = w2 = np.zeros(3)
        for _ in range(40):
            w1 = plain.step(w1, quadratic_grad(w1))
            w2 = heavy.step(w2, quadratic_grad(w2))
        assert np.abs(w2 - 3.0).max() < np.abs(w1 - 3.0).max()

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SgdOptimizer(0.1, momentum=1.0)

    def test_not_per_sample(self):
        assert not SgdOptimizer(0.1).requires_per_sample


class TestAdamOptimizer:
    def test_converges_on_quadratic(self):
        opt = AdamOptimizer(0.3)
        w = np.zeros(4)
        for _ in range(200):
            w = opt.step(w, quadratic_grad(w))
        assert np.allclose(w, 3.0, atol=1e-2)

    def test_first_step_magnitude(self):
        """Bias correction makes the first Adam step ~ lr in gradient sign."""
        opt = AdamOptimizer(0.1)
        new = opt.step(np.zeros(2), np.array([1.0, -4.0]))
        assert np.allclose(np.abs(new), 0.1, rtol=1e-4)
        assert new[0] < 0 < new[1]

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            AdamOptimizer(0.1, beta1=1.0)


class TestDpAdamOptimizer:
    def test_requires_per_sample(self):
        assert DpAdamOptimizer(0.1, 1.0, 1.0).requires_per_sample

    def test_zero_noise_matches_adam_on_clipped_mean(self, rng):
        grads = rng.normal(size=(8, 5)) * 0.01  # below clip threshold
        dp = DpAdamOptimizer(0.1, 1.0, 0.0, rng=0)
        adam = AdamOptimizer(0.1)
        w_dp = dp.step(np.zeros(5), grads)
        w_adam = adam.step(np.zeros(5), grads.mean(axis=0))
        assert np.allclose(w_dp, w_adam)

    def test_accountant(self, rng):
        acc = RdpAccountant()
        opt = DpAdamOptimizer(0.1, 1.0, 1.0, rng=0, accountant=acc, sample_rate=0.02)
        opt.step(np.zeros(4), rng.normal(size=(2, 4)))
        assert acc.total_steps == 1

    def test_trains_quadratic_privately(self, rng):
        """DP-Adam still converges near the optimum under mild noise."""
        opt = DpAdamOptimizer(0.2, 1.0, 0.1, rng=0)
        w = np.zeros(3)
        for _ in range(300):
            per_sample = quadratic_grad(w)[None, :] + rng.normal(0, 0.01, (8, 3))
            w = opt.step(w, per_sample)
        assert np.abs(w - 3.0).max() < 0.5
