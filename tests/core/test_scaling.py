"""Tests for gradient accumulation, Poisson sampling and per-layer clipping."""

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression
from repro.privacy import PerLayerClipping


@pytest.fixture(scope="module")
def small_data():
    data = make_mnist_like(300, rng=0, size=16)
    return train_test_split(data, rng=0)


def lr_model():
    return build_logistic_regression((1, 16, 16), rng=0)


class TestGradientAccumulation:
    def test_presummed_equals_direct_zero_noise(self, rng):
        """Accumulated clipped sums give exactly the direct result at sigma=0."""
        grads = rng.normal(size=(32, 20)) * 0.5
        opt = DpSgdOptimizer(0.1, 0.1, 0.0, rng=0)
        direct = opt.noisy_gradient(grads)
        total = opt.clipped_sum(grads[:16]) + opt.clipped_sum(grads[16:])
        accumulated = opt.noisy_gradient_presummed(total, 32)
        assert np.allclose(direct, accumulated)

    def test_geodp_presummed_equals_direct_zero_noise(self, rng):
        grads = rng.normal(size=(32, 20)) * 0.5
        opt = GeoDpSgdOptimizer(0.1, 0.1, 0.0, beta=0.5, rng=0)
        direct = opt.noisy_gradient(grads)
        total = opt.clipped_sum(grads[:10]) + opt.clipped_sum(grads[10:])
        accumulated = opt.noisy_gradient_presummed(total, 32)
        assert np.allclose(direct, accumulated, atol=1e-10)

    def test_trainer_microbatching_matches_full_batch(self, small_data):
        """With sigma = 0, microbatched training equals full-batch training."""
        train, _ = small_data

        def run(microbatch):
            opt = DpSgdOptimizer(1.0, 0.1, 0.0, rng=2)
            model = lr_model()
            Trainer(
                model, opt, train, batch_size=64, rng=3, microbatch_size=microbatch
            ).train(5)
            return model.get_params()

        assert np.allclose(run(None), run(16))

    def test_trainer_microbatching_with_noise_runs(self, small_data):
        train, _ = small_data
        opt = GeoDpSgdOptimizer(
            1.0, 0.1, 1.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
        )
        trainer = Trainer(lr_model(), opt, train, batch_size=64, rng=3, microbatch_size=8)
        history = trainer.train(5)
        assert len(history.losses) == 5
        assert np.isfinite(history.losses).all()

    def test_microbatch_validation(self, small_data):
        train, _ = small_data
        with pytest.raises(ValueError, match="microbatch_size"):
            Trainer(
                lr_model(), DpSgdOptimizer(1.0, 0.1, 0.0), train,
                batch_size=32, microbatch_size=0,
            )


class TestPoissonSampling:
    def test_lot_size_auto_configured(self, small_data):
        train, _ = small_data
        opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2)
        Trainer(lr_model(), opt, train, batch_size=32, rng=3, sampling="poisson")
        assert opt.lot_size == 32

    def test_training_runs_and_tolerates_empty_batches(self, small_data):
        train, _ = small_data
        # Tiny expected lot -> empty batches occur; training must survive.
        opt = DpSgdOptimizer(1.0, 0.1, 0.5, rng=2)
        trainer = Trainer(lr_model(), opt, train, batch_size=1, rng=3, sampling="poisson")
        history = trainer.train(40)
        assert history.iterations == 40
        # Empty batches record NaN losses; at least some batches were real.
        assert np.sum(~np.isnan(history.losses)) > 0

    def test_fixed_denominator_used(self):
        """With lot_size set, the division ignores the realised count."""
        opt = DpSgdOptimizer(1.0, 1.0, 0.0, rng=0, lot_size=100)
        grads = np.ones((10, 4)) * 0.01
        noisy = opt.noisy_gradient(grads)
        assert np.allclose(noisy, 10 * 0.01 / 100)

    def test_poisson_requires_dp_optimizer(self, small_data):
        from repro.core import SgdOptimizer

        train, _ = small_data
        with pytest.raises(ValueError, match="per-sample"):
            Trainer(
                lr_model(), SgdOptimizer(1.0), train, batch_size=32, sampling="poisson"
            )

    def test_unknown_sampling(self, small_data):
        train, _ = small_data
        with pytest.raises(ValueError, match="sampling"):
            Trainer(
                lr_model(), DpSgdOptimizer(1.0, 0.1, 1.0), train,
                batch_size=32, sampling="stratified",
            )


class TestPerLayerClipping:
    def test_partition_required(self, rng):
        clipper = PerLayerClipping([slice(0, 3)], 1.0)
        with pytest.raises(ValueError, match="partition"):
            clipper.clip(rng.normal(size=(4, 5)))

    def test_each_block_bounded(self, rng):
        blocks = [slice(0, 4), slice(4, 10)]
        clipper = PerLayerClipping(blocks, [0.5, 2.0])
        clipped = clipper.clip(rng.normal(size=(20, 10)) * 10)
        assert np.all(np.linalg.norm(clipped[:, :4], axis=1) <= 0.5 + 1e-9)
        assert np.all(np.linalg.norm(clipped[:, 4:], axis=1) <= 2.0 + 1e-9)

    def test_total_sensitivity(self):
        clipper = PerLayerClipping([slice(0, 2), slice(2, 4)], [3.0, 4.0])
        assert clipper.sensitivity() == pytest.approx(5.0)

    def test_scalar_threshold_broadcast(self, rng):
        clipper = PerLayerClipping([slice(0, 2), slice(2, 5)], 1.0)
        clipped = clipper.clip(rng.normal(size=(6, 5)) * 10)
        assert np.all(np.linalg.norm(clipped, axis=1) <= clipper.sensitivity() + 1e-9)

    def test_accepts_layer_slices_tuples(self):
        model = lr_model()
        clipper = PerLayerClipping(model.layer_slices(), 0.1)
        grads = np.random.default_rng(0).normal(size=(4, model.num_params))
        clipped = clipper.clip(grads)
        assert clipped.shape == grads.shape

    def test_dp_training_with_per_layer_clipping(self, small_data):
        train, _ = small_data
        model = lr_model()
        clipper = PerLayerClipping(model.layer_slices(), 0.1)
        opt = DpSgdOptimizer(1.0, clipper, 1.0, rng=2)
        history = Trainer(model, opt, train, batch_size=32, rng=3).train(5)
        assert len(history.losses) == 5

    def test_mismatched_thresholds(self):
        with pytest.raises(ValueError, match="thresholds"):
            PerLayerClipping([slice(0, 2), slice(2, 4)], [1.0, 2.0, 3.0])


class TestModelSlices:
    def test_param_slices_cover_everything(self):
        model = lr_model()
        slices = model.param_slices()
        covered = sum(s.stop - s.start for _, s in slices)
        assert covered == model.num_params
        assert slices[0][1].start == 0

    def test_layer_slices_merge_params(self):
        model = lr_model()  # Flatten (no params) + Linear (weight+bias)
        layer_slices = model.layer_slices()
        assert len(layer_slices) == 1  # only the Linear layer has params
        _, block = layer_slices[0]
        assert block == slice(0, model.num_params)

    def test_cnn_layer_slices(self):
        from repro.models import build_cnn

        model = build_cnn((1, 16, 16), channels=(2, 4), rng=0)
        layer_slices = model.layer_slices()
        assert len(layer_slices) == 3  # conv, conv, linear
        total = sum(s.stop - s.start for _, s in layer_slices)
        assert total == model.num_params
