"""Tests for the IS and SUR training optimisations."""

import numpy as np
import pytest

from repro.core import ImportanceSampling, SelectiveUpdateRelease


class TestImportanceSampling:
    def test_probabilities_sum_to_one(self, rng):
        probs = ImportanceSampling(1.0).selection_probabilities(rng.uniform(0, 5, 30))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_larger_norms_more_likely(self):
        sampler = ImportanceSampling(10.0)
        probs = sampler.selection_probabilities(np.array([0.1, 1.0, 5.0]))
        assert probs[0] < probs[1] < probs[2]

    def test_clipped_norms_equal_weight(self):
        """Above the clipping threshold all samples contribute C anyway."""
        probs = ImportanceSampling(1.0).selection_probabilities(np.array([2.0, 50.0]))
        assert probs[0] == pytest.approx(probs[1])

    def test_floor_keeps_zeros_selectable(self):
        probs = ImportanceSampling(1.0).selection_probabilities(np.array([0.0, 1.0]))
        assert probs[0] > 0

    def test_select_size_and_uniqueness(self, rng):
        idx = ImportanceSampling(1.0).select(rng.uniform(0, 2, 50), 20, rng)
        assert idx.shape == (20,)
        assert len(set(idx.tolist())) == 20

    def test_selection_bias_is_real(self, rng):
        norms = np.array([0.01] * 50 + [1.0] * 50)
        sampler = ImportanceSampling(1.0)
        hits = np.zeros(100)
        for _ in range(300):
            hits[sampler.select(norms, 10, rng)] += 1
        assert hits[50:].sum() > 3 * hits[:50].sum()

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            ImportanceSampling(1.0).select(np.ones(5), 6)

    def test_empty_norms_rejected(self):
        with pytest.raises(ValueError):
            ImportanceSampling(1.0).selection_probabilities(np.array([]))


class TestSelectiveUpdateRelease:
    def test_accepts_improvement(self):
        sur = SelectiveUpdateRelease()
        assert sur.should_accept(1.0, 0.8)
        assert sur.accepted == 1 and sur.rejected == 0

    def test_rejects_regression(self):
        sur = SelectiveUpdateRelease()
        assert not sur.should_accept(1.0, 1.5)
        assert sur.rejected == 1

    def test_threshold_tolerance(self):
        sur = SelectiveUpdateRelease(threshold=0.2)
        assert sur.should_accept(1.0, 1.1)  # regression within tolerance

    def test_acceptance_rate(self):
        sur = SelectiveUpdateRelease()
        sur.should_accept(1.0, 0.5)
        sur.should_accept(1.0, 2.0)
        assert sur.acceptance_rate == pytest.approx(0.5)

    def test_acceptance_rate_before_any_test(self):
        assert SelectiveUpdateRelease().acceptance_rate == 1.0

    def test_noisy_decision_is_seedable(self):
        a = SelectiveUpdateRelease(noise_std=1.0, rng=3)
        b = SelectiveUpdateRelease(noise_std=1.0, rng=3)
        results_a = [a.should_accept(1.0, 1.0) for _ in range(20)]
        results_b = [b.should_accept(1.0, 1.0) for _ in range(20)]
        assert results_a == results_b

    def test_noise_flips_borderline_decisions(self):
        sur = SelectiveUpdateRelease(noise_std=0.5, rng=0)
        results = {sur.should_accept(1.0, 1.01) for _ in range(200)}
        assert results == {True, False}
