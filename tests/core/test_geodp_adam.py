"""Tests for GeoDP-Adam (the paper's future-work composition)."""

import numpy as np
import pytest

from repro.core import AdamOptimizer, GeoDpAdamOptimizer
from repro.privacy import RdpAccountant


class TestGeoDpAdam:
    def test_requires_per_sample(self):
        assert GeoDpAdamOptimizer(0.1, 1.0, 1.0, beta=0.5).requires_per_sample

    def test_zero_noise_matches_adam(self, rng):
        grads = rng.normal(size=(8, 6)) * 0.01
        geo = GeoDpAdamOptimizer(0.1, 1.0, 0.0, beta=0.5, rng=0)
        adam = AdamOptimizer(0.1)
        w_geo = geo.step(np.zeros(6), grads)
        w_adam = adam.step(np.zeros(6), grads.mean(axis=0))
        assert np.allclose(w_geo, w_adam, atol=1e-10)

    def test_accountant_and_delta_prime(self, rng):
        acc = RdpAccountant()
        opt = GeoDpAdamOptimizer(
            0.1, 1.0, 1.0, beta=0.2, rng=0, accountant=acc, sample_rate=0.01
        )
        opt.step(np.zeros(4), rng.normal(size=(3, 4)))
        assert acc.total_steps == 1
        assert opt.delta_prime == pytest.approx(0.8)

    def test_trains_quadratic_privately(self, rng):
        opt = GeoDpAdamOptimizer(0.2, 1.0, 0.1, beta=0.1, rng=0)
        w = np.zeros(8)
        for _ in range(300):
            per_sample = (w - 3.0)[None, :] + rng.normal(0, 0.01, (8, 8))
            w = opt.step(w, per_sample)
        assert np.abs(w - 3.0).max() < 0.6

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="sensitivity_mode"):
            GeoDpAdamOptimizer(0.1, 1.0, 1.0, beta=0.5, sensitivity_mode="nope")

    def test_records_noisy_gradient(self, rng):
        opt = GeoDpAdamOptimizer(0.1, 1.0, 1.0, beta=0.5, rng=0)
        opt.step(np.zeros(5), rng.normal(size=(4, 5)))
        assert opt.last_noisy_gradient is not None
        assert opt.last_noisy_gradient.shape == (5,)
