"""Tests for hyper-parameter schedules and the scheduling wrapper."""

import numpy as np
import pytest

from repro.core import (
    ConstantSchedule,
    CosineDecay,
    DpSgdOptimizer,
    ExponentialDecay,
    LinearDecay,
    ScheduledOptimizer,
    SgdOptimizer,
    StepDecay,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(100) == 0.5

    def test_linear_decay_endpoints(self):
        s = LinearDecay(1.0, 0.1, 100)
        assert s(0) == pytest.approx(1.0)
        assert s(50) == pytest.approx(0.55)
        assert s(100) == pytest.approx(0.1)
        assert s(500) == pytest.approx(0.1)  # clamps after total_steps

    def test_exponential_decay(self):
        s = ExponentialDecay(1.0, 0.5)
        assert s(0) == 1.0
        assert s(3) == pytest.approx(0.125)

    def test_exponential_floor(self):
        s = ExponentialDecay(1.0, 0.1, minimum=0.05)
        assert s(100) == 0.05

    def test_step_decay(self):
        s = StepDecay(1.0, 0.5, period=10)
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_cosine_decay(self):
        s = CosineDecay(1.0, 0.0, 100)
        assert s(0) == pytest.approx(1.0)
        assert s(50) == pytest.approx(0.5)
        assert s(100) == pytest.approx(0.0, abs=1e-12)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.0)(-1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearDecay(1.0, 0.1, 0)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 1.5)
        with pytest.raises(ValueError):
            StepDecay(1.0, 0.5, 0)


class TestScheduledOptimizer:
    def test_lr_schedule_applied(self):
        opt = SgdOptimizer(123.0)
        wrapped = ScheduledOptimizer(opt, learning_rate=LinearDecay(1.0, 0.0, 10))
        params = np.zeros(3)
        grad = np.ones(3)
        out = wrapped.step(params, grad)
        assert np.allclose(out, -1.0)  # step 0: lr = 1.0
        assert opt.learning_rate == pytest.approx(1.0)
        wrapped.step(params, grad)
        assert opt.learning_rate == pytest.approx(0.9)

    def test_noise_schedule_applied(self, rng):
        opt = DpSgdOptimizer(0.1, 1.0, 5.0, rng=0)
        wrapped = ScheduledOptimizer(opt, noise_multiplier=ExponentialDecay(5.0, 0.5))
        grads = rng.normal(size=(4, 3))
        wrapped.step(np.zeros(3), grads)
        wrapped.step(np.zeros(3), grads)
        assert opt.noise_multiplier == pytest.approx(2.5)

    def test_noise_schedule_needs_noise_attr(self):
        with pytest.raises(ValueError, match="noise_multiplier"):
            ScheduledOptimizer(SgdOptimizer(0.1), noise_multiplier=ConstantSchedule(1.0))

    def test_delegation(self, rng):
        opt = DpSgdOptimizer(0.1, 1.0, 1.0, rng=0)
        wrapped = ScheduledOptimizer(opt)
        assert wrapped.requires_per_sample
        wrapped.step(np.zeros(3), rng.normal(size=(2, 3)))
        assert wrapped.last_noisy_gradient is not None

    def test_decayed_noise_trains_with_trainer(self):
        """End to end: decaying noise multiplier inside the trainer loop."""
        from repro.core import Trainer
        from repro.data import make_mnist_like, train_test_split
        from repro.models import build_logistic_regression

        train, _ = train_test_split(make_mnist_like(200, rng=0, size=16), rng=0)
        opt = DpSgdOptimizer(1.0, 0.1, 10.0, rng=1)
        wrapped = ScheduledOptimizer(
            opt, noise_multiplier=LinearDecay(10.0, 0.1, 20)
        )
        model = build_logistic_regression((1, 16, 16), rng=0)
        Trainer(model, wrapped, train, batch_size=32, rng=2).train(20)
        assert opt.noise_multiplier < 10.0
