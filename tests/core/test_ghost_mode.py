"""Ghost-clipping fast path: parity with the materialized per-sample path.

The ghost path computes the same clipped gradient sum as the materialized
``(B, P)`` path — same norms, same factors, same sum — so with identical
RNG streams entire training runs must agree to floating-point tolerance.
The default ``grad_mode="materialize"`` must stay bit-identical to a
trainer that has never heard of ghost clipping (seed stability).
"""

import warnings

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer, ImportanceSampling, Trainer
from repro.core.geodp_adam import GeoDpAdamOptimizer
from repro.core.ghost import check_grad_mode
from repro.data import make_mnist_like, train_test_split
from repro.models import build_cnn
from repro.privacy.clipping import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PerLayerClipping,
    PsacClipping,
)


@pytest.fixture(scope="module")
def cnn_data():
    data = make_mnist_like(160, rng=0, size=8)
    return train_test_split(data, rng=0)


def cnn_model():
    return build_cnn(input_shape=(1, 8, 8), rng=0)


def batch(data, n=16, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    idx = rng.choice(len(data), size=n, replace=False)
    return data.x[idx], data.y[idx]


class TestCheckGradMode:
    def test_valid(self):
        assert check_grad_mode("materialize") == "materialize"
        assert check_grad_mode("ghost") == "ghost"

    def test_invalid(self):
        with pytest.raises(ValueError, match="grad_mode"):
            check_grad_mode("magic")


class TestClippedSumParity:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: FlatClipping(0.7),
            lambda: AutoSClipping(0.7),
            lambda: PsacClipping(0.7),
            lambda: AdaptiveQuantileClipping(0.7),
        ],
        ids=["flat", "autos", "psac", "adaptive"],
    )
    def test_loss_and_clipped_grad_sum(self, cnn_data, make):
        train, _ = cnn_data
        x, y = batch(train)
        model = cnn_model()

        losses_ref, grads = model.loss_and_per_sample_gradients(x, y)
        clipped, norms_ref = make().clip_with_norms(grads)
        ref_sum = clipped.sum(axis=0)

        losses, ghost_sum, norms = model.loss_and_clipped_grad_sum(x, y, make())
        assert np.allclose(losses, losses_ref, rtol=1e-12)
        assert np.allclose(norms, norms_ref, rtol=1e-10)
        scale = np.abs(ref_sum).max() + 1e-30
        assert np.abs(ghost_sum - ref_sum).max() / scale <= 1e-8

    def test_empty_batch(self, cnn_data):
        train, _ = cnn_data
        model = cnn_model()
        x = train.x[:0]
        y = train.y[:0]
        losses, summed, norms = model.loss_and_clipped_grad_sum(x, y, FlatClipping(1.0))
        assert losses.shape == (0,)
        assert norms.shape == (0,)
        assert np.array_equal(summed, np.zeros(model.num_params))


def run_training(optimizer_factory, train, test, *, grad_mode, iterations=8, **kw):
    model = cnn_model()
    optimizer = optimizer_factory()
    trainer = Trainer(
        model,
        optimizer,
        train,
        test_data=test,
        batch_size=16,
        rng=5,
        grad_mode=grad_mode,
        **kw,
    )
    history = trainer.train(iterations)
    return np.asarray(history.losses), model.get_params()


class TestEndToEndParity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7),
            lambda: DpSgdOptimizer(0.2, AdaptiveQuantileClipping(0.7), 0.5, rng=7),
            lambda: GeoDpSgdOptimizer(0.2, 0.7, 0.5, beta=0.1, rng=7),
            lambda: GeoDpAdamOptimizer(0.05, 0.7, 0.5, beta=0.1, rng=7),
        ],
        ids=["dpsgd", "dpsgd-adaptive", "geodp", "geodp-adam"],
    )
    def test_ghost_matches_materialize(self, cnn_data, factory):
        train, test = cnn_data
        losses_m, params_m = run_training(factory, train, test, grad_mode="materialize")
        losses_g, params_g = run_training(factory, train, test, grad_mode="ghost")
        assert np.allclose(losses_m, losses_g, rtol=1e-9, atol=1e-12)
        assert np.allclose(params_m, params_g, rtol=1e-7, atol=1e-10)

    def test_microbatch_parity(self, cnn_data):
        train, test = cnn_data
        factory = lambda: DpSgdOptimizer(0.2, AdaptiveQuantileClipping(0.7), 0.5, rng=7)  # noqa: E731
        losses_m, params_m = run_training(
            factory, train, test, grad_mode="materialize", microbatch_size=4
        )
        losses_g, params_g = run_training(
            factory, train, test, grad_mode="ghost", microbatch_size=4
        )
        assert np.allclose(losses_m, losses_g, rtol=1e-9, atol=1e-12)
        assert np.allclose(params_m, params_g, rtol=1e-7, atol=1e-10)

    def test_poisson_parity(self, cnn_data):
        train, test = cnn_data
        factory = lambda: DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7, lot_size=16)  # noqa: E731
        losses_m, params_m = run_training(
            factory, train, test, grad_mode="materialize", sampling="poisson"
        )
        losses_g, params_g = run_training(
            factory, train, test, grad_mode="ghost", sampling="poisson"
        )
        # Identical RNG streams draw identical Poisson batches, so losses
        # (where defined) and final parameters agree.
        both = ~(np.isnan(losses_m) | np.isnan(losses_g))
        assert np.array_equal(np.isnan(losses_m), np.isnan(losses_g))
        assert np.allclose(losses_m[both], losses_g[both], rtol=1e-9, atol=1e-12)
        assert np.allclose(params_m, params_g, rtol=1e-7, atol=1e-10)

    def test_optimizer_grad_mode_inherited(self, cnn_data):
        train, test = cnn_data
        opt = DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7, grad_mode="ghost")
        trainer = Trainer(cnn_model(), opt, train, batch_size=16, rng=5)
        assert trainer.grad_mode == "ghost"
        trainer.train(2)


class TestGhostValidation:
    def test_importance_sampling_rejected(self, cnn_data):
        train, _ = cnn_data
        opt = DpSgdOptimizer(0.2, 0.7, 0.5, rng=7)
        with pytest.raises(ValueError, match="importance sampling"):
            Trainer(
                cnn_model(),
                opt,
                train,
                batch_size=16,
                grad_mode="ghost",
                importance_sampling=ImportanceSampling(0.7),
            )

    def test_parallel_workers_rejected(self, cnn_data):
        train, _ = cnn_data
        opt = DpSgdOptimizer(0.2, 0.7, 0.5, rng=7)
        with pytest.raises(ValueError, match="parallel_grad_workers"):
            Trainer(
                cnn_model(),
                opt,
                train,
                batch_size=16,
                grad_mode="ghost",
                parallel_grad_workers=2,
            )

    def test_non_per_sample_optimizer_rejected(self, cnn_data):
        from repro.core import SgdOptimizer

        train, _ = cnn_data
        with pytest.raises(ValueError, match="ghost"):
            Trainer(
                cnn_model(), SgdOptimizer(0.2), train, batch_size=16, grad_mode="ghost"
            )

    def test_unsupported_clipping_falls_back(self, cnn_data):
        train, _ = cnn_data
        model = cnn_model()
        blocks = [s for _, s in model.layer_slices()]
        clipping = PerLayerClipping(blocks, 0.7)
        opt = DpSgdOptimizer(0.2, clipping, 0.5, rng=7)
        with pytest.warns(RuntimeWarning, match="materialize"):
            trainer = Trainer(model, opt, train, batch_size=16, rng=5, grad_mode="ghost")
        assert trainer.grad_mode == "materialize"
        trainer.train(2)  # trains fine on the materialized path

    def test_supported_clipping_no_warning(self, cnn_data):
        train, _ = cnn_data
        opt = DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Trainer(cnn_model(), opt, train, batch_size=16, grad_mode="ghost")


class TestDefaultUnchanged:
    def test_materialize_is_bit_identical_default(self, cnn_data):
        # grad_mode="materialize" must produce exactly the same trajectory
        # as a trainer constructed without the argument (seed stability).
        train, test = cnn_data
        factory = lambda: DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7)  # noqa: E731
        losses_default, params_default = run_training(
            factory, train, test, grad_mode=None
        )
        losses_m, params_m = run_training(factory, train, test, grad_mode="materialize")
        assert np.array_equal(losses_default, losses_m)
        assert np.array_equal(params_default, params_m)


class TestGhostTelemetry:
    def test_counters(self, cnn_data):
        from repro.telemetry import MetricsRecorder

        train, _ = cnn_data
        recorder = MetricsRecorder()
        opt = DpSgdOptimizer(0.2, FlatClipping(0.7), 0.5, rng=7, recorder=recorder)
        trainer = Trainer(
            cnn_model(),
            opt,
            train,
            batch_size=16,
            rng=5,
            grad_mode="ghost",
            telemetry=recorder,
        )
        trainer.train(3)
        assert recorder.counters["ghost_clipped_sums"] == 3
        assert recorder.counters["ghost_samples"] == 3 * 16
