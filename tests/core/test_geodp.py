"""Tests for the GeoDP-SGD optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, GeoDpSgdOptimizer
from repro.geometry import direction_sensitivity
from repro.privacy import RdpAccountant


class TestNoisyGradient:
    def test_zero_noise_equals_clipped_mean(self, rng):
        opt = GeoDpSgdOptimizer(0.1, 1.0, 0.0, beta=0.5, rng=0)
        grads = rng.normal(size=(16, 10)) * 5
        from repro.privacy import FlatClipping

        expected = FlatClipping(1.0).clip(grads).mean(axis=0)
        assert np.allclose(opt.noisy_gradient(grads), expected, atol=1e-10)

    def test_direction_preserved_better_than_dp(self, rng):
        """With small beta, GeoDP's update aligns with the clean gradient
        far better than DP's under the same sigma (the paper's core claim)."""
        from repro.geometry import cosine_similarity
        from repro.privacy import FlatClipping

        grads = rng.normal(size=(64, 300)) * 0.02
        clean = FlatClipping(0.1).clip(grads).mean(axis=0)
        sims_geo, sims_dp = [], []
        geo = GeoDpSgdOptimizer(0.1, 0.1, 5.0, beta=0.003, rng=1)
        dp = DpSgdOptimizer(0.1, 0.1, 5.0, rng=1)
        for _ in range(30):
            sims_geo.append(cosine_similarity(geo.noisy_gradient(grads)[None], clean[None])[0])
            sims_dp.append(cosine_similarity(dp.noisy_gradient(grads)[None], clean[None])[0])
        assert np.mean(sims_geo) > np.mean(sims_dp)

    def test_step_update_rule_zero_noise(self, rng):
        opt = GeoDpSgdOptimizer(0.3, 1.0, 0.0, beta=1.0, rng=0)
        params = rng.normal(size=8)
        grads = rng.normal(size=(4, 8)) * 0.01
        new = opt.step(params, grads)
        assert np.allclose(new, params - 0.3 * grads.mean(axis=0), atol=1e-10)


class TestConfiguration:
    def test_direction_sensitivity_delegates(self):
        opt = GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.25, rng=0)
        assert opt.direction_sensitivity(50) == pytest.approx(
            direction_sensitivity(50, 0.25)
        )

    def test_delta_prime(self):
        opt = GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.25, rng=0)
        assert opt.delta_prime == pytest.approx(0.75)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.0)
        with pytest.raises(ValueError):
            GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=2.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="sensitivity_mode"):
            GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.5, sensitivity_mode="bogus")

    def test_accountant_integration(self, rng):
        acc = RdpAccountant()
        opt = GeoDpSgdOptimizer(
            0.1, 1.0, 1.0, beta=0.5, rng=0, accountant=acc, sample_rate=0.05
        )
        opt.step(np.zeros(6), rng.normal(size=(3, 6)))
        assert acc.total_steps == 1

    def test_same_accounting_as_dpsgd(self, rng):
        """GeoDP and DP-SGD with the same sigma report the same epsilon
        (Theorem 5: GeoDP differs only in the extra delta')."""
        grads = rng.normal(size=(4, 6))
        acc_dp, acc_geo = RdpAccountant(), RdpAccountant()
        dp = DpSgdOptimizer(0.1, 1.0, 2.0, rng=0, accountant=acc_dp, sample_rate=0.01)
        geo = GeoDpSgdOptimizer(
            0.1, 1.0, 2.0, beta=0.5, rng=0, accountant=acc_geo, sample_rate=0.01
        )
        for _ in range(10):
            dp.step(np.zeros(6), grads)
            geo.step(np.zeros(6), grads)
        assert acc_dp.get_epsilon(1e-5) == pytest.approx(acc_geo.get_epsilon(1e-5))
        spent = acc_geo.get_privacy_spent(1e-5, delta_prime=geo.delta_prime)
        assert spent.total_delta == pytest.approx(1e-5 + 0.5)

    def test_repr(self):
        text = repr(GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.5, rng=0))
        assert "beta=0.5" in text
