"""Tests for the DP and GeoDP perturbation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    clip_gradients,
    perturb_dp,
    perturb_dp_batch,
    perturb_geodp,
    perturb_geodp_batch,
)
from repro.geometry import (
    direction_mse,
    direction_sensitivity,
    gradient_mse,
    to_spherical_batch,
)


class TestClipGradients:
    def test_matches_eq6(self, rng):
        grads = rng.normal(size=(20, 10)) * 5
        clipped = clip_gradients(grads, 1.0)
        norms = np.linalg.norm(grads, axis=1)
        expected = grads / np.maximum(1.0, norms / 1.0)[:, None]
        assert np.allclose(clipped, expected)

    def test_norm_bound(self, rng):
        clipped = clip_gradients(rng.normal(size=(50, 8)) * 100, 0.5)
        assert np.all(np.linalg.norm(clipped, axis=1) <= 0.5 + 1e-12)


class TestPerturbDp:
    def test_zero_noise_is_identity_on_clipped(self, rng):
        grads = rng.normal(size=(10, 6)) * 0.01
        out = perturb_dp_batch(grads, 1.0, 0.0, 32, rng)
        assert np.allclose(out, grads)

    def test_noise_statistics(self):
        grads = np.zeros((1, 200_000))
        out = perturb_dp_batch(grads, 2.0, 1.5, 4, rng=0)
        # std = C * sigma / B = 2 * 1.5 / 4 = 0.75
        assert np.std(out) == pytest.approx(0.75, rel=0.02)
        assert np.mean(out) == pytest.approx(0.0, abs=0.01)

    def test_unbiased_on_gradient(self, rng):
        grad = rng.normal(size=50) * 0.001
        reps = np.stack([perturb_dp(grad, 1.0, 1.0, 8, rng) for _ in range(3000)])
        assert np.allclose(reps.mean(axis=0), grad, atol=0.01)

    def test_single_vector_wrapper(self, rng):
        grad = rng.normal(size=12)
        out = perturb_dp(grad, 1.0, 0.5, 16, rng=0)
        assert out.shape == (12,)

    def test_clip_flag(self, rng):
        grads = rng.normal(size=(5, 4)) * 100
        unclipped = perturb_dp_batch(grads, 1.0, 0.0, 1, rng, clip=False)
        assert np.allclose(unclipped, grads)

    def test_batch_size_shrinks_noise(self):
        grads = np.zeros((1, 100_000))
        small = perturb_dp_batch(grads, 1.0, 1.0, 10, rng=0)
        large = perturb_dp_batch(grads, 1.0, 1.0, 1000, rng=0)
        assert np.std(large) < np.std(small)

    def test_invalid_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            perturb_dp_batch(np.ones((1, 3)), 1.0, 1.0, 0)


class TestPerturbGeoDp:
    def test_zero_noise_round_trips(self, rng):
        grads = rng.normal(size=(10, 8)) * 0.01
        out = perturb_geodp_batch(grads, 1.0, 0.0, 32, 0.5, rng)
        assert np.allclose(out, grads, atol=1e-10)

    def test_direction_noise_scale(self, rng):
        """Angle noise std must be Delta theta * sigma / B (total mode)."""
        d, beta, sigma, batch = 40, 0.2, 0.5, 64
        grad = rng.normal(size=d)
        grad /= np.linalg.norm(grad)
        _, theta0 = to_spherical_batch(grad[None, :] )
        deltas = []
        for _ in range(2000):
            out = perturb_geodp(grad, 10.0, sigma, batch, beta, rng, clip=False)
            _, theta = to_spherical_batch(out[None, :])
            deltas.append(theta[0] - theta0[0])
        observed = np.std(np.stack(deltas)[:, : d // 2], axis=0).mean()
        expected = direction_sensitivity(d, beta) * sigma / batch
        assert observed == pytest.approx(expected, rel=0.1)

    def test_per_angle_mode_scales(self, rng):
        d, beta, sigma, batch = 40, 0.2, 0.5, 64
        grad = rng.normal(size=d)
        grad /= np.linalg.norm(grad)
        _, theta0 = to_spherical_batch(grad[None, :])
        deltas = []
        for _ in range(2000):
            out = perturb_geodp(
                grad, 10.0, sigma, batch, beta, rng, clip=False,
                sensitivity_mode="per_angle",
            )
            _, theta = to_spherical_batch(out[None, :])
            deltas.append(theta[0] - theta0[0])
        observed = np.std(np.stack(deltas)[:, : d // 2], axis=0).mean()
        expected = beta * np.pi * sigma / batch  # polar angles
        assert observed == pytest.approx(expected, rel=0.1)

    def test_unbiased_direction(self, rng):
        """Lemma 1: GeoDP's angle noise is unbiased on the direction."""
        grad = rng.normal(size=20)
        _, theta0 = to_spherical_batch(grad[None, :])
        thetas = []
        for _ in range(4000):
            out = perturb_geodp(grad, 10.0, 0.3, 16, 0.05, rng, clip=False)
            _, theta = to_spherical_batch(out[None, :])
            thetas.append(theta[0])
        mean_theta = np.stack(thetas).mean(axis=0)
        assert np.allclose(mean_theta, theta0[0], atol=0.02)

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="sensitivity_mode"):
            perturb_geodp_batch(np.ones((1, 3)), 1.0, 1.0, 1, 0.5, sensitivity_mode="x")

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            perturb_geodp_batch(np.ones((1, 3)), 1.0, 1.0, 1, 0.0)


class TestHeadlineComparison:
    """The paper's core empirical claims at the primitive level."""

    def _mses(self, rng, beta, d=400, sigma=1.0, batch=1024):
        from repro.data import synthetic_gradient_batch

        grads = clip_gradients(synthetic_gradient_batch(60, d, rng), 0.1)
        _, theta0 = to_spherical_batch(grads)
        dp = perturb_dp_batch(grads, 0.1, sigma, batch, rng, clip=False)
        geo = perturb_geodp_batch(grads, 0.1, sigma, batch, beta, rng, clip=False)
        _, theta_dp = to_spherical_batch(dp)
        _, theta_geo = to_spherical_batch(geo)
        return {
            "dp_theta": direction_mse(theta_dp, theta0),
            "geo_theta": direction_mse(theta_geo, theta0),
            "dp_g": gradient_mse(dp, grads),
            "geo_g": gradient_mse(geo, grads),
        }

    def test_small_beta_wins_directions(self, rng):
        """Lemma 1: there exists beta with GeoDP direction MSE < DP's."""
        m = self._mses(rng, beta=0.005)
        assert m["geo_theta"] < m["dp_theta"]

    def test_small_beta_can_win_both(self, rng):
        """Fig 3(c): small beta lets GeoDP win direction AND gradient MSE."""
        m = self._mses(rng, beta=0.003)
        assert m["geo_theta"] < m["dp_theta"]
        assert m["geo_g"] < m["dp_g"]

    def test_beta_one_loses_directions_in_high_dim(self, rng):
        """The paper's own caveat: beta = 1 + high d -> GeoDP loses."""
        m = self._mses(rng, beta=1.0)
        assert m["geo_theta"] > m["dp_theta"]

    def test_geo_direction_mse_improves_with_batch(self, rng):
        small = self._mses(rng, beta=0.01, batch=256)
        large = self._mses(rng, beta=0.01, batch=8192)
        assert large["geo_theta"] < small["geo_theta"]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_direction_mse_monotone_in_beta(self, seed):
        rng = np.random.default_rng(seed)
        mses = [self._mses(rng, beta=b)["geo_theta"] for b in (0.01, 0.1, 1.0)]
        assert mses[0] < mses[1] < mses[2]


class TestClampToRegion:
    def test_clamp_keeps_angles_in_region(self, rng):
        from repro.geometry.bounding import per_angle_sensitivity

        grads = rng.normal(size=(20, 10))
        beta = 0.3
        out = perturb_geodp_batch(
            grads, 1.0, 0.0, 1024, beta, rng, clamp_to_region=True
        )
        _, thetas = to_spherical_batch(out)
        half = beta * np.pi / 2
        assert np.all(thetas[:, :-1] >= np.pi / 2 - half - 1e-9)
        assert np.all(thetas[:, :-1] <= np.pi / 2 + half + 1e-9)
        assert np.all(np.abs(thetas[:, -1]) <= beta * np.pi + 1e-9)

    def test_no_clamp_is_default_identity_at_zero_noise(self, rng):
        grads = rng.normal(size=(5, 8)) * 0.01
        out = perturb_geodp_batch(grads, 1.0, 0.0, 32, 0.1, rng)
        assert np.allclose(out, grads, atol=1e-10)

    def test_clamp_biases_outside_directions(self, rng):
        """Clamping distorts directions outside the beta-region (the price
        of an unconditional sensitivity bound)."""
        grads = rng.normal(size=(10, 8))
        clamped = perturb_geodp_batch(
            grads, 10.0, 0.0, 32, 0.1, rng, clip=False, clamp_to_region=True
        )
        assert not np.allclose(clamped, grads, atol=1e-3)


class TestZeroNoiseConsumesNoRandomness:
    """sigma=0 must be a pure clipping path: no rng draws, so a noise-free
    reference run leaves every RNG stream exactly where it started."""

    def test_dp_batch_rng_untouched(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        grads = np.random.default_rng(1).normal(size=(8, 5))
        perturb_dp_batch(grads, 1.0, 0.0, 4, rng)
        assert rng.bit_generator.state == before

    def test_geodp_batch_rng_untouched(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        grads = np.random.default_rng(1).normal(size=(8, 5))
        perturb_geodp_batch(grads, 1.0, 0.0, 4, 0.1, rng)
        assert rng.bit_generator.state == before

    def test_dp_zero_noise_is_pure_clipping(self):
        rng = np.random.default_rng(0)
        grads = np.random.default_rng(1).normal(size=(8, 5)) * 3
        out = perturb_dp_batch(grads, 1.0, 0.0, 4, rng)
        assert np.array_equal(out, clip_gradients(grads, 1.0))

    def test_dp_zero_noise_no_clip_does_not_alias_input(self):
        rng = np.random.default_rng(0)
        grads = np.random.default_rng(1).normal(size=(4, 3))
        out = perturb_dp_batch(grads, 1.0, 0.0, 4, rng, clip=False)
        assert out is not grads
        out[0, 0] += 1.0
        assert grads[0, 0] != out[0, 0]

    def test_geodp_zero_noise_matches_spherical_round_trip(self):
        """The sigma=0 GeoDP path still goes through spherical coordinates,
        so it stays numerically identical to the sigma->0 limit."""
        rng = np.random.default_rng(0)
        grads = np.random.default_rng(1).normal(size=(6, 5)) * 0.01
        out = perturb_geodp_batch(grads, 1.0, 0.0, 4, 0.1, rng)
        assert np.allclose(out, grads, atol=1e-10)
