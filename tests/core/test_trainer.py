"""Tests for the training loop."""

import numpy as np
import pytest

from repro.core import (
    DpSgdOptimizer,
    GeoDpSgdOptimizer,
    ImportanceSampling,
    SelectiveUpdateRelease,
    SgdOptimizer,
    Trainer,
)
from repro.data import make_mnist_like, train_test_split
from repro.models import build_logistic_regression


@pytest.fixture(scope="module")
def small_data():
    data = make_mnist_like(400, rng=0, size=16)
    return train_test_split(data, rng=0)


def lr_model():
    return build_logistic_regression((1, 16, 16), rng=0)


class TestTrainerBasics:
    def test_sgd_reduces_loss(self, small_data):
        train, test = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=64, rng=1)
        history = trainer.train(50)
        assert history.iterations == 50
        assert len(history.losses) == 50
        assert np.mean(history.losses[-10:]) < np.mean(history.losses[:10])

    def test_eval_every(self, small_data):
        train, test = small_data
        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, test_data=test, batch_size=64, rng=1
        )
        history = trainer.train(20, eval_every=10)
        assert [it for it, _ in history.test_accuracy] == [10, 20]
        assert history.final_accuracy > 0.2

    def test_final_eval_appended_when_not_aligned(self, small_data):
        train, test = small_data
        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, test_data=test, batch_size=64, rng=1
        )
        history = trainer.train(15, eval_every=10)
        assert [it for it, _ in history.test_accuracy] == [10, 15]

    def test_dp_optimizer_uses_per_sample_path(self, small_data):
        train, _ = small_data
        opt = DpSgdOptimizer(1.0, 0.1, 0.0, rng=2)
        history = Trainer(lr_model(), opt, train, batch_size=64, rng=1).train(10)
        assert opt.last_noisy_gradient is not None
        assert len(history.losses) == 10

    def test_invalid_batch_size(self, small_data):
        train, _ = small_data
        with pytest.raises(ValueError, match="batch_size"):
            Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=10**6)

    def test_invalid_iterations(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=32)
        with pytest.raises(ValueError):
            trainer.train(0)

    def test_evaluate_without_test_data(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=32)
        with pytest.raises(ValueError, match="test_data"):
            trainer.evaluate()

    def test_evaluate_rejects_nonpositive_chunk(self, small_data):
        train, test = small_data
        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, test_data=test, batch_size=32
        )
        with pytest.raises(ValueError, match="chunk"):
            trainer.evaluate(chunk=0)
        with pytest.raises(ValueError, match="chunk"):
            trainer.evaluate(chunk=-5)

    def test_evaluate_chunk_boundaries_agree(self, small_data):
        """Chunk sizes 1, n and n+1 must all produce the same accuracy."""
        train, test = small_data
        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, test_data=test, batch_size=32
        )
        n = len(test)
        reference = trainer.evaluate(chunk=512)
        assert trainer.evaluate(chunk=1) == reference
        assert trainer.evaluate(chunk=n) == reference
        assert trainer.evaluate(chunk=n + 1) == reference

    def test_history_final_properties_raise_when_empty(self):
        from repro.core import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_loss
        with pytest.raises(ValueError):
            TrainingHistory().final_accuracy

    def test_deterministic_given_seeds(self, small_data):
        train, _ = small_data

        def run():
            opt = DpSgdOptimizer(1.0, 0.1, 1.0, rng=5)
            model = lr_model()
            Trainer(model, opt, train, batch_size=32, rng=6).train(5)
            return model.get_params()

        assert np.allclose(run(), run())


class TestTechniquesIntegration:
    def test_importance_sampling_runs(self, small_data):
        train, _ = small_data
        opt = DpSgdOptimizer(1.0, 0.1, 0.5, rng=2)
        trainer = Trainer(
            lr_model(),
            opt,
            train,
            batch_size=32,
            rng=1,
            importance_sampling=ImportanceSampling(0.1),
        )
        history = trainer.train(10)
        assert len(history.losses) == 10

    def test_sur_rollback(self, small_data):
        """With huge noise SUR must reject some updates; the model only keeps
        accepted ones."""
        train, _ = small_data
        sur = SelectiveUpdateRelease(threshold=0.0)
        opt = DpSgdOptimizer(5.0, 0.1, 50.0, rng=2)
        trainer = Trainer(lr_model(), opt, train, batch_size=32, rng=1, sur=sur)
        history = trainer.train(20)
        assert history.sur_acceptance_rate is not None
        assert history.sur_acceptance_rate < 1.0
        assert sur.accepted + sur.rejected == 20

    def test_sur_improves_noisy_training(self, small_data):
        """SUR should not hurt (and typically helps) under heavy noise."""
        train, test = small_data

        def final_acc(use_sur):
            sur = SelectiveUpdateRelease() if use_sur else None
            opt = DpSgdOptimizer(2.0, 0.1, 20.0, rng=3)
            model = lr_model()
            t = Trainer(model, opt, train, test_data=test, batch_size=64, rng=4, sur=sur)
            return t.train(40, eval_every=40).final_accuracy

        assert final_acc(True) >= final_acc(False) - 0.05

    def test_geodp_with_techniques(self, small_data):
        train, _ = small_data
        opt = GeoDpSgdOptimizer(
            1.0, 0.1, 1.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
        )
        trainer = Trainer(
            lr_model(),
            opt,
            train,
            batch_size=32,
            rng=1,
            importance_sampling=ImportanceSampling(0.1),
            sur=SelectiveUpdateRelease(),
        )
        assert len(trainer.train(8).losses) == 8


class TestTrainingHistoryEdgeCases:
    def test_defaults(self):
        from repro.core import TrainingHistory

        history = TrainingHistory()
        assert history.iterations == 0
        assert history.losses == []
        assert history.test_accuracy == []
        assert history.sur_acceptance_rate is None

    def test_final_properties_return_last_values(self):
        from repro.core import TrainingHistory

        history = TrainingHistory(
            losses=[2.0, 1.0], test_accuracy=[(5, 0.4), (10, 0.6)]
        )
        assert history.final_loss == 1.0
        assert history.final_accuracy == 0.6

    def test_iterations_matches_losses(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=64, rng=1)
        for n in (1, 7):
            history = trainer.train(n)
            assert history.iterations == n == len(history.losses)

    def test_no_eval_means_final_accuracy_raises(self, small_data):
        """eval_every=0 records no accuracy even when test data is attached."""
        train, test = small_data
        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, test_data=test, batch_size=64, rng=1
        )
        history = trainer.train(3)
        assert history.test_accuracy == []
        with pytest.raises(ValueError, match="accuracy"):
            history.final_accuracy

    def test_sur_rate_none_without_sur(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=64, rng=1)
        assert trainer.train(2).sur_acceptance_rate is None

    def test_sur_rate_is_one_before_any_decision(self):
        assert SelectiveUpdateRelease().acceptance_rate == 1.0

    def test_sur_rate_matches_counters(self, small_data):
        train, _ = small_data
        sur = SelectiveUpdateRelease(threshold=0.0)
        opt = DpSgdOptimizer(5.0, 0.1, 50.0, rng=2)
        history = Trainer(
            lr_model(), opt, train, batch_size=32, rng=1, sur=sur
        ).train(12)
        assert history.sur_acceptance_rate == sur.accepted / 12
        assert sur.accepted + sur.rejected == 12

    def test_sur_rate_accumulates_across_train_calls(self, small_data):
        """The SUR object owns the counters, so a reused trainer reports the
        cumulative rate — callers wanting a fresh rate pass a fresh SUR."""
        train, _ = small_data
        sur = SelectiveUpdateRelease(threshold=0.0)
        opt = DpSgdOptimizer(5.0, 0.1, 50.0, rng=2)
        trainer = Trainer(lr_model(), opt, train, batch_size=32, rng=1, sur=sur)
        trainer.train(5)
        history = trainer.train(5)
        assert sur.accepted + sur.rejected == 10
        assert history.sur_acceptance_rate == sur.accepted / 10


class TestTrainerExtensions:
    def test_augmentation_hook_applied(self, small_data):
        train, _ = small_data
        calls = []

        def spy_augment(x):
            calls.append(x.shape)
            return x

        trainer = Trainer(
            lr_model(), SgdOptimizer(1.0), train, batch_size=32, rng=1,
            augment=spy_augment,
        )
        trainer.train(3)
        assert len(calls) == 3
        assert all(shape[0] == 32 for shape in calls)

    def test_augmenter_integration(self, small_data):
        from repro.data import Augmenter

        train, _ = small_data
        trainer = Trainer(
            lr_model(),
            DpSgdOptimizer(1.0, 0.1, 0.5, rng=2),
            train,
            batch_size=32,
            rng=1,
            augment=Augmenter(flip=True, crop_padding=1, rng=0),
        )
        history = trainer.train(5)
        assert len(history.losses) == 5

    def test_train_epochs(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=64, rng=1)
        history = trainer.train_epochs(2)
        steps_per_epoch = -(-len(train) // 64)
        assert history.iterations == 2 * steps_per_epoch

    def test_train_epochs_invalid(self, small_data):
        train, _ = small_data
        trainer = Trainer(lr_model(), SgdOptimizer(1.0), train, batch_size=64)
        with pytest.raises(ValueError):
            trainer.train_epochs(0)


class TestSurMomentumRollback:
    """A SUR-rejected step must roll back the optimizer's update state
    (momentum velocity, Adam moments), not just the parameters — otherwise
    the rejected noisy gradient keeps steering later accepted steps."""

    ALWAYS_REJECT = -1e9  # accept iff delta_loss <= threshold: never

    def test_rejected_steps_leave_velocity_untouched(self, small_data):
        train, _ = small_data
        model = lr_model()
        initial = model.get_params().copy()
        optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2, momentum=0.9)
        trainer = Trainer(
            model, optimizer, train, batch_size=32, rng=1,
            sur=SelectiveUpdateRelease(threshold=self.ALWAYS_REJECT),
        )
        trainer.train(5)
        assert trainer.sur.rejected == 5
        assert np.array_equal(model.get_params(), initial)
        assert optimizer._velocity is None  # pre-first-step state, every time

    def test_rejected_steps_leave_adam_moments_untouched(self, small_data):
        from repro.core.geodp_adam import GeoDpAdamOptimizer

        train, _ = small_data
        model = lr_model()
        optimizer = GeoDpAdamOptimizer(0.1, 0.1, 1.0, beta=0.1, rng=2)
        trainer = Trainer(
            model, optimizer, train, batch_size=32, rng=1,
            sur=SelectiveUpdateRelease(threshold=self.ALWAYS_REJECT),
        )
        trainer.train(4)
        assert optimizer._m is None
        assert optimizer._v is None
        assert optimizer._t == 0

    def test_rollback_reaches_through_scheduled_wrapper(self, small_data):
        from repro.core.schedules import ConstantSchedule, ScheduledOptimizer

        train, _ = small_data
        model = lr_model()
        inner = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2, momentum=0.9)
        trainer = Trainer(
            model,
            ScheduledOptimizer(inner, learning_rate=ConstantSchedule(1.0)),
            train,
            batch_size=32,
            rng=1,
            sur=SelectiveUpdateRelease(threshold=self.ALWAYS_REJECT),
        )
        trainer.train(3)
        assert inner._velocity is None

    def test_accepted_steps_advance_velocity_normally(self, small_data):
        train, _ = small_data
        model = lr_model()
        optimizer = DpSgdOptimizer(1.0, 0.1, 1.0, rng=2, momentum=0.9)
        trainer = Trainer(
            model, optimizer, train, batch_size=32, rng=1,
            sur=SelectiveUpdateRelease(threshold=1e9),  # always accept
        )
        trainer.train(3)
        assert trainer.sur.accepted == 3
        assert optimizer._velocity is not None
        assert np.any(optimizer._velocity != 0)


class TestAdaptiveClippingLotIntegration:
    """With microbatch accumulation, one optimizer step is one lot: every
    chunk clips at the same threshold and the threshold adapts once."""

    def test_one_threshold_update_per_optimizer_step(self, small_data):
        from repro.privacy.clipping import AdaptiveQuantileClipping

        train, _ = small_data
        clipping = AdaptiveQuantileClipping(0.1)
        optimizer = DpSgdOptimizer(1.0, clipping, 1.0, rng=2)
        trainer = Trainer(
            lr_model(), optimizer, train, batch_size=32, rng=1, microbatch_size=8
        )
        trainer.train(6)
        # 4 chunks per step, but exactly one adaptation per step
        assert len(clipping.history) == 6

    def test_microbatching_does_not_change_threshold_trajectory(self, small_data):
        """The threshold path depends only on the lots' norm statistics, so
        chunk size must not alter it (the bug this guards against: per-chunk
        updates made the trajectory depend on microbatch_size)."""
        from repro.privacy.clipping import AdaptiveQuantileClipping

        train, _ = small_data

        def run(microbatch_size):
            clipping = AdaptiveQuantileClipping(0.1)
            optimizer = DpSgdOptimizer(1.0, clipping, 0.0, rng=2)
            Trainer(
                lr_model(), optimizer, train, batch_size=32, rng=1,
                microbatch_size=microbatch_size,
            ).train(5)
            return clipping.history + [clipping.clip_norm]

        assert run(8) == run(16) == run(None)
