"""Tests for the DP-SGD optimizer."""

import numpy as np
import pytest

from repro.core import DpSgdOptimizer
from repro.privacy import AutoSClipping, FlatClipping, RdpAccountant


class TestNoisyGradient:
    def test_zero_noise_equals_clipped_mean(self, rng):
        opt = DpSgdOptimizer(0.1, 1.0, 0.0, rng=0)
        grads = rng.normal(size=(16, 10)) * 5
        noisy = opt.noisy_gradient(grads)
        clipped = FlatClipping(1.0).clip(grads)
        assert np.allclose(noisy, clipped.mean(axis=0))

    def test_noise_scale(self):
        opt = DpSgdOptimizer(0.1, 2.0, 1.0, rng=0)
        grads = np.zeros((4, 100_000))
        noisy = opt.noisy_gradient(grads)
        # std = sigma * C / B = 2 / 4 = 0.5
        assert np.std(noisy) == pytest.approx(0.5, rel=0.02)

    def test_respects_custom_clipping(self, rng):
        clipping = AutoSClipping(1.0)
        opt = DpSgdOptimizer(0.1, clipping, 0.0, rng=0)
        grads = rng.normal(size=(8, 6))
        assert np.allclose(opt.noisy_gradient(grads), clipping.clip(grads).mean(axis=0))


class TestStep:
    def test_update_rule(self, rng):
        opt = DpSgdOptimizer(0.5, 1.0, 0.0, rng=0)
        params = rng.normal(size=10)
        grads = rng.normal(size=(4, 10)) * 0.01
        new = opt.step(params, grads)
        assert np.allclose(new, params - 0.5 * grads.mean(axis=0))

    def test_records_last_noisy_gradient(self, rng):
        opt = DpSgdOptimizer(0.5, 1.0, 1.0, rng=0)
        opt.step(np.zeros(5), rng.normal(size=(3, 5)))
        assert opt.last_noisy_gradient is not None
        assert opt.last_noisy_gradient.shape == (5,)

    def test_deterministic_with_seed(self, rng):
        grads = rng.normal(size=(4, 6))
        a = DpSgdOptimizer(0.1, 1.0, 1.0, rng=7).step(np.zeros(6), grads)
        b = DpSgdOptimizer(0.1, 1.0, 1.0, rng=7).step(np.zeros(6), grads)
        assert np.allclose(a, b)


class TestAccounting:
    def test_accountant_steps_recorded(self, rng):
        acc = RdpAccountant()
        opt = DpSgdOptimizer(0.1, 1.0, 1.0, rng=0, accountant=acc, sample_rate=0.01)
        for _ in range(5):
            opt.step(np.zeros(4), rng.normal(size=(2, 4)))
        assert acc.total_steps == 5
        assert acc.get_epsilon(1e-5) > 0

    def test_accountant_requires_sample_rate(self):
        with pytest.raises(ValueError, match="sample_rate"):
            DpSgdOptimizer(0.1, 1.0, 1.0, accountant=RdpAccountant())

    def test_float_clipping_becomes_flat(self):
        opt = DpSgdOptimizer(0.1, 0.7, 1.0)
        assert isinstance(opt.clipping, FlatClipping)
        assert opt.clipping.clip_norm == 0.7

    def test_requires_per_sample_flag(self):
        assert DpSgdOptimizer(0.1, 1.0, 1.0).requires_per_sample


class TestMomentum:
    def test_momentum_accumulates_velocity(self, rng):
        """With constant gradients, momentum steps grow toward lr*g/(1-m)."""
        grads = np.tile(np.ones(4) * 0.01, (8, 1))
        opt = DpSgdOptimizer(1.0, 1.0, 0.0, rng=0, momentum=0.5)
        w = np.zeros(4)
        w1 = opt.step(w, grads)
        step1 = w - w1
        w2 = opt.step(w1, grads)
        step2 = w1 - w2
        assert np.all(step2 > step1)  # velocity builds up
        assert np.allclose(step2, step1 * 1.5)  # v2 = 0.5*v1 + g = 1.5*g

    def test_zero_momentum_is_plain(self, rng):
        grads = rng.normal(size=(4, 5)) * 0.01
        plain = DpSgdOptimizer(0.5, 1.0, 0.0, rng=0).step(np.zeros(5), grads)
        with_m = DpSgdOptimizer(0.5, 1.0, 0.0, rng=0, momentum=0.0).step(
            np.zeros(5), grads
        )
        assert np.allclose(plain, with_m)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            DpSgdOptimizer(0.1, 1.0, 1.0, momentum=1.0)

    def test_geodp_momentum(self, rng):
        from repro.core import GeoDpSgdOptimizer

        grads = np.tile(np.ones(4) * 0.01, (8, 1))
        opt = GeoDpSgdOptimizer(1.0, 1.0, 0.0, beta=0.5, rng=0, momentum=0.9)
        w = opt.step(np.zeros(4), grads)
        w = opt.step(w, grads)
        assert opt._velocity is not None
        with pytest.raises(ValueError, match="momentum"):
            GeoDpSgdOptimizer(0.1, 1.0, 1.0, beta=0.5, momentum=-0.1)
