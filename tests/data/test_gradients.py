"""Tests for the synthetic gradient datasets (paper §VI-A protocol)."""

import numpy as np
import pytest

from repro.data import collect_training_gradients, make_mnist_like, synthetic_gradient_batch
from repro.geometry import cosine_similarity
from repro.models import build_logistic_regression


class TestSyntheticGradientBatch:
    def test_shape(self):
        grads = synthetic_gradient_batch(30, 50, rng=0)
        assert grads.shape == (30, 50)

    def test_directions_concentrate(self):
        grads = synthetic_gradient_batch(200, 100, rng=0, concentration=50.0)
        mean_dir = grads.mean(axis=0)
        sims = cosine_similarity(grads, np.tile(mean_dir, (200, 1)))
        assert sims.mean() > 0.9

    def test_concentration_parameter_controls_spread(self):
        tight = synthetic_gradient_batch(300, 80, rng=0, concentration=100.0)
        loose = synthetic_gradient_batch(300, 80, rng=0, concentration=1.0)

        def mean_cos(g):
            centre = g.mean(axis=0)
            return cosine_similarity(g, np.tile(centre, (g.shape[0], 1))).mean()

        assert mean_cos(tight) > mean_cos(loose)

    def test_magnitude_distribution(self):
        grads = synthetic_gradient_batch(
            3000, 20, rng=0, magnitude_mean=2.0, magnitude_sigma=0.0
        )
        norms = np.linalg.norm(grads, axis=1)
        assert np.allclose(norms, 2.0)

    def test_deterministic(self):
        a = synthetic_gradient_batch(10, 10, rng=5)
        b = synthetic_gradient_batch(10, 10, rng=5)
        assert np.allclose(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_gradient_batch(0, 10)
        with pytest.raises(ValueError):
            synthetic_gradient_batch(10, 1)


class TestCollectTrainingGradients:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_mnist_like(80, rng=0, size=16)

    def test_shape_full_dim(self, dataset):
        model = build_logistic_regression((1, 16, 16), rng=0)
        grads = collect_training_gradients(model, dataset, 15, rng=0)
        assert grads.shape == (15, model.num_params)

    def test_projected_dim(self, dataset):
        model = build_logistic_regression((1, 16, 16), rng=0)
        grads = collect_training_gradients(model, dataset, 10, rng=0, dim=64)
        assert grads.shape == (10, 64)

    def test_training_actually_progresses(self, dataset):
        """The collector is B=1 SGD, so later gradients should shrink on average."""
        model = build_logistic_regression((1, 16, 16), rng=0)
        grads = collect_training_gradients(
            model, dataset, 120, rng=0, learning_rate=0.5
        )
        early = np.linalg.norm(grads[:20], axis=1).mean()
        late = np.linalg.norm(grads[-20:], axis=1).mean()
        assert late < early

    def test_invalid_dim(self, dataset):
        model = build_logistic_regression((1, 16, 16), rng=0)
        with pytest.raises(ValueError, match="dim must be"):
            collect_training_gradients(model, dataset, 5, dim=10**9)

    def test_invalid_count(self, dataset):
        model = build_logistic_regression((1, 16, 16), rng=0)
        with pytest.raises(ValueError):
            collect_training_gradients(model, dataset, 0)
