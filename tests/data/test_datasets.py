"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset, train_test_split


def toy_dataset(n=20, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return Dataset(rng.normal(size=(n, 3)), rng.integers(0, 4, size=n))


class TestDataset:
    def test_length(self):
        assert len(toy_dataset(15)) == 15

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="samples"):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int))

    def test_subset(self):
        data = toy_dataset()
        sub = data.subset([1, 3, 5])
        assert len(sub) == 3
        assert np.allclose(sub.x[0], data.x[1])

    def test_shuffled_preserves_pairs(self):
        data = toy_dataset()
        shuffled = data.shuffled(rng=0)
        # Each (x, y) row of the shuffle exists in the original.
        for xs, ys in zip(shuffled.x, shuffled.y):
            matches = np.where((data.x == xs).all(axis=1))[0]
            assert any(data.y[m] == ys for m in matches)

    def test_batch(self):
        data = toy_dataset()
        x, y = data.batch([0, 2])
        assert x.shape == (2, 3)
        assert y.shape == (2,)

    def test_num_classes(self):
        data = Dataset(np.zeros((4, 1)), np.array([0, 1, 2, 2]))
        assert data.num_classes == 3

    def test_class_counts(self):
        data = Dataset(np.zeros((4, 1)), np.array([0, 1, 2, 2]))
        assert np.array_equal(data.class_counts(), [1, 1, 2])

    def test_normalized(self):
        data = Dataset(np.arange(12, dtype=float).reshape(4, 3), np.zeros(4, dtype=int))
        norm = data.normalized()
        assert norm.x.mean() == pytest.approx(0.0, abs=1e-12)
        assert norm.x.std() == pytest.approx(1.0)

    def test_normalized_constant_features(self):
        data = Dataset(np.full((3, 2), 7.0), np.zeros(3, dtype=int))
        norm = data.normalized()
        assert np.allclose(norm.x, 0.0)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(toy_dataset(100), 0.2, rng=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_disjoint_and_complete(self):
        data = Dataset(np.arange(50)[:, None].astype(float), np.zeros(50, dtype=int))
        train, test = train_test_split(data, 0.3, rng=1)
        combined = sorted(np.concatenate([train.x[:, 0], test.x[:, 0]]).tolist())
        assert combined == list(range(50))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(toy_dataset(), 0.0)
        with pytest.raises(ValueError):
            train_test_split(toy_dataset(), 1.0)

    def test_deterministic_with_seed(self):
        data = toy_dataset(40)
        a1, _ = train_test_split(data, 0.25, rng=5)
        a2, _ = train_test_split(data, 0.25, rng=5)
        assert np.allclose(a1.x, a2.x)
