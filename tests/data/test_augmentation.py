"""Tests for image augmentation."""

import numpy as np
import pytest

from repro.data.augmentation import (
    Augmenter,
    add_pixel_noise,
    random_crop,
    random_horizontal_flip,
)


class TestHorizontalFlip:
    def test_probability_one_flips_all(self, rng):
        x = rng.random((4, 1, 3, 3))
        out = random_horizontal_flip(x, rng, probability=1.0)
        assert np.allclose(out, x[:, :, :, ::-1])

    def test_probability_zero_identity(self, rng):
        x = rng.random((4, 1, 3, 3))
        assert np.allclose(random_horizontal_flip(x, rng, probability=0.0), x)

    def test_input_not_mutated(self, rng):
        x = rng.random((4, 1, 3, 3))
        x0 = x.copy()
        random_horizontal_flip(x, rng, probability=1.0)
        assert np.array_equal(x, x0)

    def test_fraction_roughly_half(self, rng):
        x = np.arange(2 * 1 * 1 * 2, dtype=float).reshape(2, 1, 1, 2)
        x = np.tile(x, (100, 1, 1, 1))
        out = random_horizontal_flip(x, rng)
        flipped = np.mean([not np.array_equal(a, b) for a, b in zip(out, x)])
        assert 0.3 < flipped < 0.7

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError, match="B, C, H, W"):
            random_horizontal_flip(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="probability"):
            random_horizontal_flip(np.zeros((1, 1, 2, 2)), probability=2.0)


class TestRandomCrop:
    def test_shape_preserved(self, rng):
        x = rng.random((5, 3, 8, 8))
        assert random_crop(x, rng, padding=2).shape == x.shape

    def test_zero_padding_identity(self, rng):
        x = rng.random((2, 1, 4, 4))
        assert np.allclose(random_crop(x, rng, padding=0), x)

    def test_content_is_a_shift(self, rng):
        """Every output must appear somewhere inside the padded original."""
        x = rng.random((1, 1, 6, 6))
        out = random_crop(x, rng, padding=2)
        padded = np.pad(x, ((0, 0), (0, 0), (2, 2), (2, 2)))
        found = any(
            np.allclose(out[0, 0], padded[0, 0, t : t + 6, l : l + 6])
            for t in range(5)
            for l in range(5)
        )
        assert found

    def test_negative_padding(self):
        with pytest.raises(ValueError):
            random_crop(np.zeros((1, 1, 4, 4)), padding=-1)


class TestPixelNoise:
    def test_clipped_to_unit_interval(self, rng):
        x = rng.random((3, 1, 4, 4))
        out = add_pixel_noise(x, rng, std=0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unclipped(self, rng):
        x = np.zeros((1, 1, 50, 50))
        out = add_pixel_noise(x, rng, std=1.0, clip01=False)
        assert out.min() < 0.0

    def test_zero_std_identity(self, rng):
        x = rng.random((2, 1, 3, 3))
        assert np.allclose(add_pixel_noise(x, rng, std=0.0), x)


class TestAugmenter:
    def test_pipeline_shape(self, rng):
        x = rng.random((6, 3, 8, 8))
        augment = Augmenter(flip=True, crop_padding=2, noise_std=0.01, rng=0)
        assert augment(x).shape == x.shape

    def test_deterministic_with_seed(self, rng):
        x = rng.random((4, 1, 6, 6))
        a = Augmenter(flip=True, crop_padding=1, noise_std=0.05, rng=3)(x)
        b = Augmenter(flip=True, crop_padding=1, noise_std=0.05, rng=3)(x)
        assert np.allclose(a, b)

    def test_noop_configuration(self, rng):
        x = rng.random((2, 1, 4, 4))
        assert np.allclose(Augmenter(flip=False)(x), x)
