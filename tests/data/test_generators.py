"""Tests for the procedural MNIST/CIFAR substitutes."""

import numpy as np
import pytest

from repro.data import make_cifar_like, make_mnist_like
from repro.data.cifar_like import NUM_CLASSES, render_class_image
from repro.data.mnist_like import DIGIT_GLYPHS, render_digit


class TestMnistLike:
    def test_shapes_and_range(self):
        data = make_mnist_like(50, rng=0)
        assert data.x.shape == (50, 1, 28, 28)
        assert data.x.min() >= 0.0 and data.x.max() <= 1.0
        assert data.y.shape == (50,)

    def test_balanced_classes(self):
        data = make_mnist_like(100, rng=0)
        assert np.array_equal(data.class_counts(), [10] * 10)

    def test_deterministic_with_seed(self):
        a = make_mnist_like(20, rng=3)
        b = make_mnist_like(20, rng=3)
        assert np.allclose(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_intra_class_variance(self):
        """Two renders of the same digit must differ (jitter is real)."""
        rng = np.random.default_rng(0)
        a = render_digit(7, rng)
        b = render_digit(7, rng)
        assert not np.allclose(a, b)

    def test_inter_class_structure(self):
        """Noise-free class means must be more similar within class than across."""
        data = make_mnist_like(400, rng=1, noise_std=0.0)
        means = np.stack([data.x[data.y == k, 0].mean(axis=0) for k in range(10)])
        flat = means.reshape(10, -1)
        # Distance from each class mean to itself is 0; to other classes > 0.
        dists = np.linalg.norm(flat[:, None] - flat[None, :], axis=2)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert off_diag.min() > 1.0

    def test_custom_size(self):
        data = make_mnist_like(10, rng=0, size=16)
        assert data.x.shape == (10, 1, 16, 16)

    def test_all_glyphs_defined(self):
        assert sorted(DIGIT_GLYPHS) == list(range(10))
        for glyph in DIGIT_GLYPHS.values():
            assert glyph.shape == (7, 5)
            assert glyph.sum() > 0

    def test_invalid_digit(self):
        with pytest.raises(ValueError, match="0-9"):
            render_digit(10)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            make_mnist_like(0)

    def test_learnable(self):
        """A logistic regression must beat chance comfortably on this data."""
        from repro.models import build_logistic_regression

        data = make_mnist_like(600, rng=0)
        model = build_logistic_regression(rng=0)
        x, y = data.x, data.y
        for _ in range(60):
            _, grad = model.loss_and_gradient(x[:500], y[:500])
            model.set_params(model.get_params() - 1.0 * grad)
        assert model.accuracy(x[500:], y[500:]) > 0.6


class TestCifarLike:
    def test_shapes_and_range(self):
        data = make_cifar_like(40, rng=0)
        assert data.x.shape == (40, 3, 32, 32)
        assert data.x.min() >= 0.0 and data.x.max() <= 1.0

    def test_balanced_classes(self):
        data = make_cifar_like(100, rng=0)
        assert np.array_equal(data.class_counts(), [10] * NUM_CLASSES)

    def test_deterministic_with_seed(self):
        a = make_cifar_like(12, rng=9)
        b = make_cifar_like(12, rng=9)
        assert np.allclose(a.x, b.x)

    def test_every_class_renders(self):
        rng = np.random.default_rng(0)
        for label in range(NUM_CLASSES):
            img = render_class_image(label, rng)
            assert img.shape == (3, 32, 32)
            assert img.std() > 0.01  # not a constant image

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            render_class_image(NUM_CLASSES, rng=0)

    def test_custom_size(self):
        data = make_cifar_like(10, rng=0, size=16)
        assert data.x.shape == (10, 3, 16, 16)

    def test_harder_than_mnist_like(self):
        """Same LR budget: CIFAR-like accuracy below MNIST-like (paper's ordering)."""
        from repro.models import build_logistic_regression

        def lr_accuracy(data, input_shape):
            model = build_logistic_regression(input_shape, rng=0)
            for _ in range(40):
                _, g = model.loss_and_gradient(data.x[:400], data.y[:400])
                model.set_params(model.get_params() - 1.0 * g)
            return model.accuracy(data.x[400:], data.y[400:])

        easy = lr_accuracy(make_mnist_like(500, rng=0), (1, 28, 28))
        hard = lr_accuracy(make_cifar_like(500, rng=0), (3, 32, 32))
        assert hard < easy
