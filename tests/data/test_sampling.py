"""Tests for minibatch samplers."""

import numpy as np
import pytest

from repro.data import iterate_minibatches, minibatch_indices, poisson_indices


class TestMinibatchIndices:
    def test_size_and_uniqueness(self):
        idx = minibatch_indices(100, 32, rng=0)
        assert idx.shape == (32,)
        assert len(set(idx.tolist())) == 32

    def test_full_batch(self):
        idx = minibatch_indices(10, 10, rng=0)
        assert sorted(idx.tolist()) == list(range(10))

    def test_bounds(self):
        idx = minibatch_indices(50, 20, rng=1)
        assert idx.min() >= 0 and idx.max() < 50

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            minibatch_indices(10, 11)
        with pytest.raises(ValueError):
            minibatch_indices(10, 0)

    def test_approximately_uniform(self):
        counts = np.zeros(20)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            counts[minibatch_indices(20, 5, rng)] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, 1 / 20, atol=0.01)


class TestPoissonIndices:
    def test_expected_size(self):
        rng = np.random.default_rng(0)
        sizes = [len(poisson_indices(1000, 0.1, rng)) for _ in range(200)]
        assert np.mean(sizes) == pytest.approx(100, rel=0.1)

    def test_can_be_empty(self):
        rng = np.random.default_rng(0)
        sizes = [len(poisson_indices(5, 0.01, rng)) for _ in range(200)]
        assert min(sizes) == 0

    def test_sorted_unique(self):
        idx = poisson_indices(100, 0.5, rng=0)
        assert np.array_equal(idx, np.unique(idx))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_indices(10, 0.0)
        with pytest.raises(ValueError):
            poisson_indices(10, 1.5)


class TestIterateMinibatches:
    def test_yields_requested_count(self):
        batches = list(iterate_minibatches(50, 10, 7, rng=0))
        assert len(batches) == 7
        assert all(b.shape == (10,) for b in batches)

    def test_batches_differ(self):
        batches = list(iterate_minibatches(1000, 10, 2, rng=0))
        assert not np.array_equal(batches[0], batches[1])
