"""Tests for the paper's three evaluation models."""

import numpy as np
import pytest

from repro.models import build_cnn, build_logistic_regression, build_resnet


class TestLogisticRegression:
    def test_param_count_mnist(self):
        model = build_logistic_regression((1, 28, 28), 10)
        assert model.num_params == 28 * 28 * 10 + 10  # 7850

    def test_flat_input_shape(self):
        model = build_logistic_regression((20,), 3)
        out = model.forward(np.zeros((4, 20)), train=False)
        assert out.shape == (4, 3)

    def test_forward_shape(self, rng):
        model = build_logistic_regression(rng=0)
        out = model.forward(rng.random((5, 1, 28, 28)), train=False)
        assert out.shape == (5, 10)

    def test_learns_separable_data(self, rng):
        """A few plain-SGD steps must reduce loss on linearly separable data."""
        model = build_logistic_regression((4,), 2, rng=0)
        x = np.concatenate([rng.normal(2, 0.3, (50, 4)), rng.normal(-2, 0.3, (50, 4))])
        y = np.array([0] * 50 + [1] * 50)
        loss0 = model.mean_loss(x, y)
        for _ in range(20):
            _, grad = model.loss_and_gradient(x, y)
            model.set_params(model.get_params() - 0.5 * grad)
        assert model.mean_loss(x, y) < loss0 * 0.5
        assert model.accuracy(x, y) == 1.0


class TestCnn:
    def test_forward_shape(self, rng):
        model = build_cnn((1, 28, 28), 10, channels=(4, 8), rng=0)
        out = model.forward(rng.random((3, 1, 28, 28)), train=False)
        assert out.shape == (3, 10)

    def test_small_input(self, rng):
        model = build_cnn((1, 16, 16), 10, channels=(2, 4), rng=0)
        out = model.forward(rng.random((2, 1, 16, 16)), train=False)
        assert out.shape == (2, 10)

    def test_indivisible_input_rejected(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            build_cnn((1, 30, 30))

    def test_per_sample_gradient_shape(self, rng):
        model = build_cnn((1, 16, 16), 10, channels=(2, 4), rng=0)
        x = rng.random((6, 1, 16, 16))
        y = rng.integers(0, 10, size=6)
        _, grads = model.loss_and_per_sample_gradients(x, y)
        assert grads.shape == (6, model.num_params)

    def test_channels_scale_params(self):
        small = build_cnn(channels=(2, 4), rng=0).num_params
        large = build_cnn(channels=(8, 16), rng=0).num_params
        assert large > small


class TestResnet:
    def test_forward_shape(self, rng):
        model = build_resnet((3, 32, 32), 10, base_channels=4, rng=0)
        out = model.forward(rng.random((2, 3, 32, 32)), train=False)
        assert out.shape == (2, 10)

    def test_has_three_residual_blocks(self):
        from repro.nn import ResidualBlock

        model = build_resnet(rng=0)
        blocks = [layer for layer in model.layers if isinstance(layer, ResidualBlock)]
        assert len(blocks) == 3

    def test_gradient_flow_through_blocks(self, rng):
        """Every parameter must receive nonzero gradient somewhere in a batch."""
        model = build_resnet((3, 16, 16), 10, base_channels=2, rng=0)
        x = rng.random((4, 3, 16, 16))
        y = rng.integers(0, 10, size=4)
        _, grad = model.loss_and_gradient(x, y)
        assert grad.shape == (model.num_params,)
        assert np.linalg.norm(grad) > 0

    def test_per_sample_matches_mean(self, rng):
        model = build_resnet((3, 16, 16), 10, base_channels=2, rng=0)
        x = rng.random((3, 3, 16, 16))
        y = rng.integers(0, 10, size=3)
        _, mean_grad = model.loss_and_gradient(x, y)
        _, per_sample = model.loss_and_per_sample_gradients(x, y)
        assert np.allclose(per_sample.mean(axis=0), mean_grad, atol=1e-12)
