"""Smoke test for the perf-regression gate (``benchmarks/compare.py``).

``benchmarks/`` is not a package, so the module is loaded by file path."""

import importlib.util
import json
from pathlib import Path

import pytest

_COMPARE = Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"


@pytest.fixture(scope="module")
def compare_mod():
    spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _archive(path: Path, benchmarks: dict) -> Path:
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


BASE = {
    "clip": {"seconds": 1.0, "peak_bytes": 1000},
    "noise": {"seconds": 0.5, "peak_bytes": 500},
}


class TestCompare:
    def test_within_budget_passes(self, compare_mod):
        candidate = {
            "clip": {"seconds": 1.2, "peak_bytes": 1400},  # +20% time, +40% mem
            "noise": {"seconds": 0.5, "peak_bytes": 500},
        }
        lines, failures = compare_mod.compare(BASE, candidate)
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_time_regression_flagged(self, compare_mod):
        candidate = {"clip": {"seconds": 1.3, "peak_bytes": 1000}}  # +30% > 25%
        _, failures = compare_mod.compare(BASE, candidate)
        assert failures == ["clip: time 1.30x baseline"]

    def test_memory_regression_flagged(self, compare_mod):
        candidate = {"noise": {"seconds": 0.5, "peak_bytes": 800}}  # +60% > 50%
        _, failures = compare_mod.compare(BASE, candidate)
        assert failures == ["noise: peak memory 1.60x baseline"]

    def test_new_and_missing_benchmarks_never_fail(self, compare_mod):
        lines, failures = compare_mod.compare(
            BASE, {"brand_new": {"seconds": 9.0, "peak_bytes": 9}}
        )
        assert failures == []
        assert any("new benchmark" in line for line in lines)
        assert any("missing from candidate" in line for line in lines)

    def test_bench_files_sorted_numerically(self, compare_mod, tmp_path):
        for n in (10, 0, 2):
            _archive(tmp_path / f"BENCH_{n}.json", BASE)
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
        names = [p.name for p in compare_mod.bench_files(tmp_path)]
        assert names == ["BENCH_0.json", "BENCH_2.json", "BENCH_10.json"]


class TestMain:
    def test_exit_codes(self, compare_mod, tmp_path, capsys):
        _archive(tmp_path / "BENCH_0.json", BASE)
        assert compare_mod.main(["--dir", str(tmp_path)]) == 0  # too few files
        assert "at least two" in capsys.readouterr().out

        _archive(tmp_path / "BENCH_1.json", BASE)
        assert compare_mod.main(["--dir", str(tmp_path)]) == 0
        assert "PASS" in capsys.readouterr().out

        _archive(
            tmp_path / "BENCH_2.json",
            {"clip": {"seconds": 2.0, "peak_bytes": 1000}},
        )
        assert compare_mod.main(["--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "TIME REGRESSION" in out

    def test_explicit_files_and_thresholds(self, compare_mod, tmp_path, capsys):
        a = _archive(tmp_path / "BENCH_0.json", BASE)
        b = _archive(
            tmp_path / "BENCH_1.json", {"clip": {"seconds": 1.2, "peak_bytes": 1000}}
        )
        assert (
            compare_mod.main(
                ["--baseline", str(a), "--candidate", str(b),
                 "--max-time-regression", "0.1"]
            )
            == 1
        )
        capsys.readouterr()


def _sparse_section(dense: float, sparse: float, touch_rate: float) -> dict:
    return {
        "vocab_size": 100_000,
        "touch_rate": touch_rate,
        "benchmarks": {
            "dense_step": {"seconds": dense},
            "sparse_step": {"seconds": sparse},
        },
    }


class TestGateSparse:
    def test_sparse_beats_dense_passes(self, compare_mod):
        lines, failures = compare_mod.gate_sparse(_sparse_section(0.05, 0.002, 0.01))
        assert failures == []
        assert any("beats dense" in line for line in lines)

    def test_sparse_slower_than_dense_fails(self, compare_mod):
        _, failures = compare_mod.gate_sparse(_sparse_section(0.01, 0.02, 0.01))
        assert len(failures) == 1
        assert "must be < 1.00x" in failures[0]

    def test_high_touch_rate_skips_gate(self, compare_mod):
        # At 50% touch the dense path may legitimately win; never fail.
        lines, failures = compare_mod.gate_sparse(_sparse_section(0.01, 0.02, 0.5))
        assert failures == []
        assert any("gate skipped" in line for line in lines)

    def test_missing_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_sparse(None)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_gate_sparse_file(self, compare_mod, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(
            json.dumps(
                {"benchmarks": BASE, "sparse": _sparse_section(0.05, 0.002, 0.01)}
            )
        )
        report, ok = compare_mod.gate_sparse_file(path)
        assert ok and "PASS" in report
        path.write_text(
            json.dumps(
                {"benchmarks": BASE, "sparse": _sparse_section(0.01, 0.02, 0.01)}
            )
        )
        report, ok = compare_mod.gate_sparse_file(path)
        assert not ok and "FAIL" in report


def _service_section(per_second: float, p95: float) -> dict:
    return {
        "decisions": 500,
        "decisions_per_second": per_second,
        "p95_latency_seconds": p95,
        "benchmarks": {"admission_decision_p95": {"seconds": p95}},
    }


class TestGateService:
    def test_fast_admission_passes(self, compare_mod):
        lines, failures = compare_mod.gate_service(_service_section(5000.0, 0.001))
        assert failures == []
        assert all("FAIL" not in line for line in lines)

    def test_slow_throughput_fails(self, compare_mod):
        _, failures = compare_mod.gate_service(_service_section(150.0, 0.001))
        assert len(failures) == 1
        assert "decisions/s" in failures[0]

    def test_high_p95_fails(self, compare_mod):
        _, failures = compare_mod.gate_service(_service_section(5000.0, 0.2))
        assert len(failures) == 1
        assert "p95" in failures[0]

    def test_missing_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_service(None)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_incomplete_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_service({"decisions": 10})
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_gate_service_file(self, compare_mod, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(
            json.dumps(
                {"benchmarks": BASE, "service": _service_section(5000.0, 0.001)}
            )
        )
        report, ok = compare_mod.gate_service_file(path)
        assert ok and "PASS" in report
        path.write_text(
            json.dumps({"benchmarks": BASE, "service": _service_section(10.0, 0.2)})
        )
        report, ok = compare_mod.gate_service_file(path)
        assert not ok and "FAIL" in report


class TestMinTimeFloor:
    """Sub-millisecond baselines are floored before computing time ratios."""

    def test_floor_constant(self, compare_mod):
        assert compare_mod.MIN_TIME_SECONDS == 1e-3

    def test_jitter_on_fast_kernels_never_fails(self, compare_mod):
        # 5x "regression" of a 0.1 ms kernel is timer noise: 0.5 ms is
        # still under the 1 ms floor, so the ratio is 0.5x, not 5x.
        base = {"fast": {"seconds": 1e-4, "peak_bytes": 100}}
        cand = {"fast": {"seconds": 5e-4, "peak_bytes": 100}}
        lines, failures = compare_mod.compare(base, cand)
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_real_regressions_of_fast_kernels_still_fail(self, compare_mod):
        base = {"fast": {"seconds": 1e-4, "peak_bytes": 100}}
        cand = {"fast": {"seconds": 1e-2, "peak_bytes": 100}}  # 10x the floor
        _, failures = compare_mod.compare(base, cand)
        assert failures == ["fast: time 10.00x baseline"]

    def test_slow_kernels_use_their_true_baseline(self, compare_mod):
        base = {"slow": {"seconds": 1.0, "peak_bytes": 100}}
        cand = {"slow": {"seconds": 1.3, "peak_bytes": 100}}
        _, failures = compare_mod.compare(base, cand)
        assert failures == ["slow: time 1.30x baseline"]


def _threads_section(
    byte_equal=True, cpu_count=8, speedup=2.5, steady_peak=1_000_000
) -> dict:
    return {
        "cpu_count": cpu_count,
        "backend": "cext",
        "byte_equal": byte_equal,
        "speedup": {
            "perturb_geodp_batch": {
                "t1_seconds": 0.01,
                "tn_seconds": 0.01 / speedup,
                "threads": 4,
                "speedup": speedup,
            }
        },
        "release_steady_peak_bytes": steady_peak,
    }


class TestGateThreads:
    def test_healthy_section_passes(self, compare_mod):
        lines, failures = compare_mod.gate_threads(_threads_section())
        assert failures == []
        assert all("FAIL" not in line for line in lines)

    def test_determinism_break_fails_on_any_machine(self, compare_mod):
        for cpus in (1, 8):
            _, failures = compare_mod.gate_threads(
                _threads_section(byte_equal=False, cpu_count=cpus)
            )
            assert len(failures) == 1
            assert "determinism" in failures[0]

    def test_low_speedup_fails_with_enough_cpus(self, compare_mod):
        _, failures = compare_mod.gate_threads(
            _threads_section(speedup=1.2, cpu_count=8)
        )
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_speedup_gate_skipped_on_small_machines(self, compare_mod):
        # A 1-CPU box physically cannot scale; only the speedup check is
        # waived — determinism and allocation still gate.
        lines, failures = compare_mod.gate_threads(
            _threads_section(speedup=1.0, cpu_count=1)
        )
        assert failures == []
        assert any("speedup gate skipped" in line for line in lines)

    def test_steady_peak_ceiling(self, compare_mod):
        ceiling = compare_mod.RELEASE_STEADY_PEAK_CEILING
        _, failures = compare_mod.gate_threads(
            _threads_section(steady_peak=ceiling + 1)
        )
        assert len(failures) == 1
        assert "steady-state" in failures[0]
        _, failures = compare_mod.gate_threads(_threads_section(steady_peak=ceiling))
        assert failures == []

    def test_ceiling_is_5x_under_the_pre_arena_peak(self, compare_mod):
        assert compare_mod.RELEASE_STEADY_PEAK_CEILING == 23_041_638 // 5

    def test_missing_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_threads(None)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_gate_threads_file(self, compare_mod, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps({"benchmarks": BASE, "threads": _threads_section()}))
        report, ok = compare_mod.gate_threads_file(path)
        assert ok and "PASS" in report
        path.write_text(
            json.dumps(
                {"benchmarks": BASE, "threads": _threads_section(byte_equal=False)}
            )
        )
        report, ok = compare_mod.gate_threads_file(path)
        assert not ok and "FAIL" in report


class TestDescribeEnv:
    def test_new_archives_surface_machine_context(self, compare_mod, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": BASE,
                    "cpu_count": 8,
                    "num_threads": 4,
                    "backends_available": {"reference": True, "cext": True,
                                           "numba": False, "fused": True},
                }
            )
        )
        env = compare_mod.describe_env(path)
        assert "cpu_count=8" in env and "num_threads=4" in env
        assert "backends=cext,fused,reference" in env

    def test_old_archives_yield_empty_context(self, compare_mod, tmp_path):
        path = _archive(tmp_path / "BENCH_0.json", BASE)
        assert compare_mod.describe_env(path) == ""


def _live_section(overhead=0.01, evaluate_p95=0.001, render_p95=0.002):
    return {
        "overhead_fraction": overhead,
        "evaluate_p95_seconds": evaluate_p95,
        "render_p95_seconds": render_p95,
        "benchmarks": {"prometheus_render_p95": {"seconds": render_p95}},
    }


class TestGateLive:
    def test_cheap_live_layer_passes(self, compare_mod):
        lines, failures = compare_mod.gate_live(_live_section())
        assert failures == []
        assert all("FAIL" not in line for line in lines)

    def test_high_overhead_fails(self, compare_mod):
        _, failures = compare_mod.gate_live(_live_section(overhead=0.2))
        assert len(failures) == 1
        assert "overhead" in failures[0]

    def test_slow_scrape_fails(self, compare_mod):
        _, failures = compare_mod.gate_live(_live_section(render_p95=0.5))
        assert len(failures) == 1
        assert "render" in failures[0]

    def test_slow_evaluation_fails(self, compare_mod):
        _, failures = compare_mod.gate_live(_live_section(evaluate_p95=0.5))
        assert len(failures) == 1
        assert "evaluation" in failures[0]

    def test_missing_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_live(None)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_incomplete_section_skips_gate(self, compare_mod):
        lines, failures = compare_mod.gate_live({"benchmarks": {}})
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_gate_live_file(self, compare_mod, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps({"benchmarks": BASE, "live": _live_section()}))
        report, ok = compare_mod.gate_live_file(path)
        assert ok and "PASS" in report
        path.write_text(
            json.dumps({"benchmarks": BASE, "live": _live_section(overhead=0.3)})
        )
        report, ok = compare_mod.gate_live_file(path)
        assert not ok and "FAIL" in report
