"""Tests for the membership-inference evaluation substrate."""

import numpy as np
import pytest

from repro.attacks import (
    LossThresholdAttack,
    ShadowModelAttack,
    attack_roc,
    membership_advantage,
)
from repro.core import DpSgdOptimizer, SgdOptimizer, Trainer
from repro.data import Dataset, make_mnist_like, train_test_split
from repro.models import build_logistic_regression


@pytest.fixture(scope="module")
def overfit_setup():
    """An intentionally overfit model: strong membership signal."""
    data = make_mnist_like(240, rng=0, size=16)
    members, non_members = train_test_split(data, test_fraction=0.5, rng=0)
    model = build_logistic_regression((1, 16, 16), rng=0)
    trainer = Trainer(model, SgdOptimizer(2.0), members, batch_size=32, rng=1)
    trainer.train(400)
    return model, members, non_members


class TestMetrics:
    def test_perfect_separation(self):
        assert membership_advantage([2.0, 3.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_chance_level(self, rng):
        a = rng.normal(size=4000)
        b = rng.normal(size=4000)
        assert membership_advantage(a, b) < 0.1

    def test_roc_endpoints(self, rng):
        fpr, tpr = attack_roc(rng.normal(size=50), rng.normal(size=50))
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_roc_monotone(self, rng):
        fpr, tpr = attack_roc(rng.normal(1, 1, 100), rng.normal(0, 1, 100))
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            attack_roc([], [1.0])


class TestLossThresholdAttack:
    def test_detects_overfit_model(self, overfit_setup):
        model, members, non_members = overfit_setup
        attack = LossThresholdAttack().fit(model, non_members)
        m_scores = attack.score(model, members.x, members.y)
        n_scores = attack.score(model, non_members.x, non_members.y)
        assert membership_advantage(m_scores, n_scores) > 0.2

    def test_predict_requires_fit(self, overfit_setup):
        model, members, _ = overfit_setup
        with pytest.raises(RuntimeError, match="fit"):
            LossThresholdAttack().predict(model, members.x, members.y)

    def test_predict_flags_members_more(self, overfit_setup):
        model, members, non_members = overfit_setup
        attack = LossThresholdAttack().fit(model, non_members, member_data=members)
        member_rate = attack.predict(model, members.x, members.y).mean()
        non_member_rate = attack.predict(model, non_members.x, non_members.y).mean()
        assert member_rate > non_member_rate

    def test_dp_training_reduces_advantage(self):
        """The whole point of the paper's setting: DP noise weakens MIA."""
        data = make_mnist_like(240, rng=1, size=16)
        members, non_members = train_test_split(data, test_fraction=0.5, rng=1)

        def advantage(optimizer):
            model = build_logistic_regression((1, 16, 16), rng=0)
            Trainer(model, optimizer, members, batch_size=32, rng=2).train(400)
            attack = LossThresholdAttack().fit(model, non_members)
            return membership_advantage(
                attack.score(model, members.x, members.y),
                attack.score(model, non_members.x, non_members.y),
            )

        plain = advantage(SgdOptimizer(2.0))
        private = advantage(DpSgdOptimizer(2.0, 0.1, 5.0, rng=3))
        assert private < plain


class TestShadowModelAttack:
    def test_fit_and_score(self):
        data = make_mnist_like(400, rng=2, size=16)
        shadow_data, rest = train_test_split(data, test_fraction=0.4, rng=2)
        members, non_members = train_test_split(rest, test_fraction=0.5, rng=3)

        def builder():
            return build_logistic_regression((1, 16, 16), rng=0)

        target = builder()
        Trainer(target, SgdOptimizer(2.0), members, batch_size=16, rng=4).train(300)

        attack = ShadowModelAttack(builder, num_shadows=2, train_steps=300, rng=5)
        attack.fit(shadow_data)
        m_scores = attack.score(target, members.x, members.y)
        n_scores = attack.score(target, non_members.x, non_members.y)
        assert m_scores.shape == (len(members),)
        assert np.all((m_scores >= 0) & (m_scores <= 1))
        # The overfit target should leak membership to the shadow attack.
        assert membership_advantage(m_scores, n_scores) > 0.1

    def test_score_requires_fit(self):
        attack = ShadowModelAttack(lambda: None, num_shadows=1)
        with pytest.raises(RuntimeError, match="fit"):
            attack.score(None, np.zeros((1, 1)), [0])

    def test_too_small_shadow_data_rejected(self):
        attack = ShadowModelAttack(lambda: None, num_shadows=4, batch_size=32)
        tiny = Dataset(np.zeros((20, 2)), np.zeros(20, dtype=int))
        with pytest.raises(ValueError, match="too small"):
            attack.fit(tiny)

    def test_invalid_shadow_count(self):
        with pytest.raises(ValueError):
            ShadowModelAttack(lambda: None, num_shadows=0)
