"""Cross-cutting property-based tests of the library's core invariants.

These complement the per-module unit tests with randomised checks of the
contracts everything else relies on:

* spherical conversion is a bijection (up to float error) on R^d \\ {0};
* clipping never increases norms and preserves directions (flat);
* zero-noise perturbation is the identity for both schemes;
* perturbation never leaks the un-noised coordinates when sigma > 0;
* accountants are monotone in steps, sample rate and noise;
* the Theorem-1 decomposition is exact for arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    clip_gradients,
    efficiency_difference,
    perturb_dp_batch,
    perturb_geodp_batch,
)
from repro.geometry import to_cartesian_batch, to_spherical_batch
from repro.privacy import RdpAccountant
from repro.privacy.rdp import DEFAULT_ALPHAS, rdp_subsampled_gaussian, rdp_to_dp


def grads_strategy(max_rows=8, max_dim=30):
    return st.builds(
        lambda seed, rows, dim, scale: np.random.default_rng(seed).normal(
            size=(rows, dim)
        )
        * scale,
        st.integers(0, 2**31),
        st.integers(1, max_rows),
        st.integers(2, max_dim),
        st.floats(1e-3, 1e3),
    )


class TestSphericalBijection:
    @settings(max_examples=80, deadline=None)
    @given(grads_strategy())
    def test_round_trip(self, grads):
        r, theta = to_spherical_batch(grads)
        back = to_cartesian_batch(r, theta)
        assert np.allclose(back, grads, rtol=1e-8, atol=1e-8 * np.abs(grads).max())

    @settings(max_examples=50, deadline=None)
    @given(grads_strategy())
    def test_magnitude_is_norm(self, grads):
        r, _ = to_spherical_batch(grads)
        assert np.allclose(r, np.linalg.norm(grads, axis=1), rtol=1e-10)

    @settings(max_examples=50, deadline=None)
    @given(grads_strategy(), st.floats(0.1, 10.0))
    def test_scaling_changes_only_magnitude(self, grads, factor):
        # Rows with nonzero norm keep their angles under positive scaling.
        norms = np.linalg.norm(grads, axis=1)
        grads = grads[norms > 1e-9]
        if len(grads) == 0:
            return
        _, theta1 = to_spherical_batch(grads)
        _, theta2 = to_spherical_batch(grads * factor)
        assert np.allclose(theta1, theta2, atol=1e-8)


class TestClippingInvariants:
    @settings(max_examples=60, deadline=None)
    @given(grads_strategy(), st.floats(0.01, 100.0))
    def test_never_increases_norm(self, grads, clip_norm):
        clipped = clip_gradients(grads, clip_norm)
        assert np.all(
            np.linalg.norm(clipped, axis=1)
            <= np.linalg.norm(grads, axis=1) + 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(grads_strategy(), st.floats(0.01, 100.0))
    def test_bounded_by_threshold(self, grads, clip_norm):
        clipped = clip_gradients(grads, clip_norm)
        assert np.all(np.linalg.norm(clipped, axis=1) <= clip_norm * (1 + 1e-9))

    @settings(max_examples=40, deadline=None)
    @given(grads_strategy(), st.floats(0.01, 100.0))
    def test_idempotent(self, grads, clip_norm):
        once = clip_gradients(grads, clip_norm)
        twice = clip_gradients(once, clip_norm)
        assert np.allclose(once, twice)


class TestPerturbationInvariants:
    @settings(max_examples=40, deadline=None)
    @given(grads_strategy(), st.integers(1, 4096))
    def test_zero_noise_dp_identity(self, grads, batch):
        clipped = clip_gradients(grads, 1.0)
        out = perturb_dp_batch(clipped, 1.0, 0.0, batch, rng=0, clip=False)
        assert np.allclose(out, clipped)

    @settings(max_examples=40, deadline=None)
    @given(grads_strategy(), st.integers(1, 4096), st.floats(0.001, 1.0))
    def test_zero_noise_geodp_identity(self, grads, batch, beta):
        clipped = clip_gradients(grads, 1.0)
        out = perturb_geodp_batch(clipped, 1.0, 0.0, batch, beta, rng=0, clip=False)
        assert np.allclose(out, clipped, atol=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31), st.floats(0.1, 10.0))
    def test_dp_noise_scale_shrinks_with_batch(self, seed, sigma):
        grads = np.zeros((1, 4000))
        small = perturb_dp_batch(grads, 1.0, sigma, 16, rng=seed)
        large = perturb_dp_batch(grads, 1.0, sigma, 4096, rng=seed)
        assert np.std(large) < np.std(small)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31))
    def test_geodp_direction_noise_grows_with_beta(self, seed):
        from repro.geometry import direction_mse

        rng = np.random.default_rng(seed)
        grads = clip_gradients(rng.normal(size=(10, 50)), 1.0)
        _, theta0 = to_spherical_batch(grads)
        mses = []
        for beta in (0.01, 0.1, 1.0):
            out = perturb_geodp_batch(grads, 1.0, 1.0, 256, beta, rng=seed, clip=False)
            _, theta = to_spherical_batch(out)
            mses.append(direction_mse(theta, theta0))
        assert mses[0] < mses[1] < mses[2]


class TestAccountantInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(0.5, 5.0),
        st.floats(0.001, 0.2),
        st.integers(1, 200),
        st.integers(1, 200),
    )
    def test_monotone_in_steps(self, sigma, q, steps_a, steps_extra):
        acc = RdpAccountant()
        acc.step(sigma, q, num_steps=steps_a)
        before = acc.get_epsilon(1e-5)
        acc.step(sigma, q, num_steps=steps_extra)
        assert acc.get_epsilon(1e-5) >= before

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.5, 5.0), st.floats(0.001, 0.1), st.integers(1, 500))
    def test_monotone_in_sample_rate(self, sigma, q, steps):
        low = steps * rdp_subsampled_gaussian(q, sigma, DEFAULT_ALPHAS)
        high = steps * rdp_subsampled_gaussian(min(2 * q, 1.0), sigma, DEFAULT_ALPHAS)
        eps_low, _ = rdp_to_dp(DEFAULT_ALPHAS, low, 1e-5)
        eps_high, _ = rdp_to_dp(DEFAULT_ALPHAS, high, 1e-5)
        assert eps_low <= eps_high + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.5, 3.0), st.floats(0.001, 0.1), st.integers(1, 500))
    def test_monotone_in_noise(self, sigma, q, steps):
        quiet = steps * rdp_subsampled_gaussian(q, 2 * sigma, DEFAULT_ALPHAS)
        loud = steps * rdp_subsampled_gaussian(q, sigma, DEFAULT_ALPHAS)
        eps_quiet, _ = rdp_to_dp(DEFAULT_ALPHAS, quiet, 1e-5)
        eps_loud, _ = rdp_to_dp(DEFAULT_ALPHAS, loud, 1e-5)
        assert eps_quiet <= eps_loud + 1e-9


class TestTheoremOneExactness:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.integers(2, 50),
        st.floats(1e-3, 10.0),
        st.floats(1e-4, 1e2),
    )
    def test_decomposition_exact(self, seed, dim, eta, scale):
        rng = np.random.default_rng(seed)
        w_t = rng.normal(size=dim) * scale
        w_star = rng.normal(size=dim) * scale
        g = rng.normal(size=dim)
        noisy = g + rng.normal(size=dim)
        out = efficiency_difference(w_t, w_star, g, noisy, eta)
        tolerance = 1e-7 * max(1.0, abs(out["direct"]), eta**2 * scale**2)
        assert abs(out["total"] - out["direct"]) <= tolerance
