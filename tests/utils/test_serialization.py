"""Tests for checkpointing."""

import numpy as np
import pytest

from repro.core.trainer import TrainingHistory
from repro.models import build_logistic_regression
from repro.utils.serialization import (
    load_checkpoint,
    load_history,
    save_checkpoint,
    save_history,
)


class TestCheckpoint:
    def test_round_trip(self, tmp_path, rng):
        model = build_logistic_regression((4,), 3, rng=0)
        model.set_params(rng.normal(size=model.num_params))
        path = tmp_path / "model.npz"
        save_checkpoint(path, model, metadata={"iteration": 42, "sigma": 1.0})

        fresh = build_logistic_regression((4,), 3, rng=1)
        params, meta = load_checkpoint(path, fresh)
        assert np.allclose(fresh.get_params(), model.get_params())
        assert meta == {"iteration": 42, "sigma": 1.0}
        assert np.allclose(params, model.get_params())

    def test_load_without_model(self, tmp_path):
        model = build_logistic_regression((4,), 3, rng=0)
        path = tmp_path / "m.npz"
        save_checkpoint(path, model)
        params, meta = load_checkpoint(path)
        assert params.shape == (model.num_params,)
        assert meta == {}

    def test_suffix_added(self, tmp_path):
        model = build_logistic_regression((4,), 3, rng=0)
        save_checkpoint(tmp_path / "ckpt", model)
        params, _ = load_checkpoint(tmp_path / "ckpt")
        assert params.shape == (model.num_params,)

    def test_shape_mismatch_rejected(self, tmp_path):
        small = build_logistic_regression((4,), 3, rng=0)
        path = tmp_path / "m.npz"
        save_checkpoint(path, small)
        big = build_logistic_regression((8,), 3, rng=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, big)

    def test_bad_version_rejected(self, tmp_path):
        import json

        model = build_logistic_regression((4,), 3, rng=0)
        path = tmp_path / "m.npz"
        np.savez(
            path,
            params=model.get_params(),
            metadata=np.frombuffer(
                json.dumps({"_format_version": 99}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestHistory:
    def test_round_trip(self, tmp_path):
        history = TrainingHistory(
            losses=[2.0, 1.5, 1.0],
            test_accuracy=[(2, 0.5), (3, 0.7)],
            iterations=3,
            sur_acceptance_rate=0.8,
        )
        path = tmp_path / "history.json"
        save_history(path, history)
        loaded = load_history(path)
        assert loaded.losses == history.losses
        assert loaded.test_accuracy == history.test_accuracy
        assert loaded.iterations == 3
        assert loaded.sur_acceptance_rate == pytest.approx(0.8)

    def test_none_sur_rate(self, tmp_path):
        history = TrainingHistory(losses=[1.0], iterations=1)
        path = tmp_path / "h.json"
        save_history(path, history)
        assert load_history(path).sur_acceptance_rate is None
