"""Tests for shared utilities: RNG handling, validation, table formatting."""

import numpy as np
import pytest

from repro.utils import (
    as_rng,
    check_in_range,
    check_positive,
    check_probability,
    check_vector,
    format_table,
    spawn_rngs,
)
from repro.utils.validation import check_matrix


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(as_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        x = [g.random() for g in spawn_rngs(7, 3)]
        y = [g.random() for g in spawn_rngs(7, 3)]
        assert x == y

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_positive("x", 0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))

    def test_check_probability(self):
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 0.0)
        assert check_probability("p", 0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_in_range(self):
        assert check_in_range("x", 0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0, 1, inclusive_high=False)
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0, 1, inclusive_low=False)

    def test_check_vector(self):
        out = check_vector("v", [1, 2, 3])
        assert out.dtype == np.float64
        with pytest.raises(ValueError):
            check_vector("v", [[1, 2]])
        with pytest.raises(ValueError):
            check_vector("v", [1.0], min_dim=2)
        with pytest.raises(ValueError):
            check_vector("v", [np.nan])

    def test_check_matrix(self):
        out = check_matrix("m", [[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        with pytest.raises(ValueError):
            check_matrix("m", [1, 2])
        with pytest.raises(ValueError):
            check_matrix("m", [[1, 2]], ncols=3)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2  # aligned widths

    def test_scientific_for_tiny_values(self):
        text = format_table(["x"], [[1e-8]])
        assert "e-08" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])
