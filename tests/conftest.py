"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def gradient_batch(rng) -> np.ndarray:
    """A small batch of random gradients ``(40, 25)``."""
    return rng.normal(size=(40, 25))


def numerical_gradient(f, x, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad
