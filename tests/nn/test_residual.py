"""Tests for the residual block."""

import numpy as np
import pytest

from repro.nn import ResidualBlock
from tests.nn.test_layers import (
    check_input_gradient,
    check_param_gradients,
    check_per_sample_consistency,
)


class TestResidualBlockStructure:
    def test_identity_shortcut_when_shapes_match(self):
        block = ResidualBlock(4, 4, stride=1, rng=0)
        assert block.projection is None

    def test_projection_when_channels_change(self):
        block = ResidualBlock(4, 8, stride=1, rng=0)
        assert block.projection is not None
        assert block.projection.kernel == 1

    def test_projection_when_stride(self):
        assert ResidualBlock(4, 4, stride=2, rng=0).projection is not None

    def test_output_shape(self, rng):
        block = ResidualBlock(3, 6, stride=2, rng=0)
        out = block.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 6, 4, 4)

    def test_param_names_prefixed(self):
        block = ResidualBlock(2, 4, stride=1, rng=0)
        names = set(block.params())
        assert "conv1.weight" in names and "conv2.bias" in names
        assert "projection.weight" in names

    def test_num_params(self):
        block = ResidualBlock(2, 2, stride=1, rng=0)
        expected = (2 * 2 * 9 + 2) * 2  # two 3x3 convs with bias
        assert block.num_params == expected

    def test_zero_weights_pass_input_through_relu(self, rng):
        block = ResidualBlock(2, 2, stride=1, rng=0)
        for name in list(block.params()):
            block.set_param(name, np.zeros_like(block.params()[name]))
        x = np.abs(rng.normal(size=(1, 2, 4, 4)))  # non-negative input
        assert np.allclose(block.forward(x), x)  # relu(0 + x) = x

    def test_set_unknown_param(self):
        with pytest.raises(KeyError):
            ResidualBlock(2, 2, rng=0).set_param("conv3.weight", np.zeros(1))


class TestResidualBlockGradients:
    def test_input_gradient_identity_shortcut(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        x[np.abs(x) < 0.05] = 0.1  # stay off the ReLU kinks
        check_input_gradient(ResidualBlock(2, 2, stride=1, rng=0), x, atol=1e-5)

    def test_input_gradient_projection_shortcut(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        x[np.abs(x) < 0.05] = 0.1
        check_input_gradient(ResidualBlock(2, 4, stride=2, rng=0), x, atol=1e-5)

    def test_param_gradients(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        check_param_gradients(ResidualBlock(2, 3, stride=1, rng=0), x, atol=1e-5)

    def test_per_sample_gradients(self, rng):
        x = rng.normal(size=(3, 2, 4, 4))
        check_per_sample_consistency(ResidualBlock(2, 3, stride=1, rng=0), x)
