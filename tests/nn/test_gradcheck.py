"""Tests for the public gradient-checking utility."""

import numpy as np
import pytest

from repro.nn import Layer, Linear, ReLU
from repro.nn.gradcheck import GradCheckReport, check_layer, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        grad = numerical_gradient(lambda x: float(np.sum(x**2)), np.array([1.0, -2.0]))
        assert np.allclose(grad, [2.0, -4.0], atol=1e-6)


class TestCheckLayer:
    def test_correct_layer_passes(self, rng):
        report = check_layer(Linear(4, 3, rng=0), rng.normal(size=(5, 4)), rng=1)
        assert report.passed
        assert report.input_error < 1e-5
        assert set(report.param_errors) == {"weight", "bias"}
        assert set(report.per_sample_errors) == {"weight", "bias"}

    def test_stateless_layer(self, rng):
        x = rng.normal(size=(3, 6))
        x[np.abs(x) < 0.05] = 0.1
        report = check_layer(ReLU(), x, rng=1)
        assert report.passed
        assert report.param_errors == {}

    def test_buggy_layer_fails(self, rng):
        class BuggyLinear(Linear):
            def backward(self, grad_out, per_sample=False):
                grad_in, grads = super().backward(grad_out, per_sample)
                return grad_in * 1.1, grads  # wrong input gradient

        report = check_layer(BuggyLinear(3, 2, rng=0), rng.normal(size=(4, 3)), rng=1)
        assert not report.passed
        assert report.input_error > 1e-3

    def test_buggy_param_gradient_fails(self, rng):
        class BuggyParams(Linear):
            def backward(self, grad_out, per_sample=False):
                grad_in, grads = super().backward(grad_out, per_sample)
                grads = {k: v * 2.0 for k, v in grads.items()}
                return grad_in, grads

        report = check_layer(BuggyParams(3, 2, rng=0), rng.normal(size=(4, 3)), rng=1)
        assert not report.passed
        assert max(report.param_errors.values()) > 1e-3

    def test_report_str(self, rng):
        report = check_layer(Linear(2, 2, rng=0), rng.normal(size=(3, 2)), rng=1)
        text = str(report)
        assert "PASSED" in text and "weight" in text

    def test_skip_per_sample(self, rng):
        report = check_layer(
            Linear(2, 2, rng=0), rng.normal(size=(3, 2)), rng=1, check_per_sample=False
        )
        assert report.per_sample_errors == {}
