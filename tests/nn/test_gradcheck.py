"""Tests for the public gradient-checking utility.

Includes full per-sample-gradient coverage: every layer exported from
``repro.nn`` (normalisation and residual blocks included) is checked
against central differences, both for its batch gradients and — where the
layer supports DP's per-sample path — for an individual sample's gradient.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Layer, Linear, ReLU
from repro.nn.gradcheck import GradCheckReport, check_layer, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        grad = numerical_gradient(lambda x: float(np.sum(x**2)), np.array([1.0, -2.0]))
        assert np.allclose(grad, [2.0, -4.0], atol=1e-6)


class TestCheckLayer:
    def test_correct_layer_passes(self, rng):
        report = check_layer(Linear(4, 3, rng=0), rng.normal(size=(5, 4)), rng=1)
        assert report.passed
        assert report.input_error < 1e-5
        assert set(report.param_errors) == {"weight", "bias"}
        assert set(report.per_sample_errors) == {"weight", "bias"}
        assert set(report.per_sample_fd_errors) == {"weight", "bias"}

    def test_stateless_layer(self, rng):
        x = rng.normal(size=(3, 6))
        x[np.abs(x) < 0.05] = 0.1
        report = check_layer(ReLU(), x, rng=1)
        assert report.passed
        assert report.param_errors == {}

    def test_buggy_layer_fails(self, rng):
        class BuggyLinear(Linear):
            def backward(self, grad_out, per_sample=False):
                grad_in, grads = super().backward(grad_out, per_sample)
                return grad_in * 1.1, grads  # wrong input gradient

        report = check_layer(BuggyLinear(3, 2, rng=0), rng.normal(size=(4, 3)), rng=1)
        assert not report.passed
        assert report.input_error > 1e-3

    def test_buggy_param_gradient_fails(self, rng):
        class BuggyParams(Linear):
            def backward(self, grad_out, per_sample=False):
                grad_in, grads = super().backward(grad_out, per_sample)
                grads = {k: v * 2.0 for k, v in grads.items()}
                return grad_in, grads

        report = check_layer(BuggyParams(3, 2, rng=0), rng.normal(size=(4, 3)), rng=1)
        assert not report.passed
        assert max(report.param_errors.values()) > 1e-3

    def test_buggy_per_sample_gradient_fails(self, rng):
        """A per-sample gradient that sums correctly but misattributes mass
        across samples is only caught by the finite-difference check."""

        class BuggyPerSample(Linear):
            def backward(self, grad_out, per_sample=False):
                grad_in, grads = super().backward(grad_out, per_sample)
                if per_sample:
                    # Shift half of sample 1's gradient onto sample 0: the
                    # sum over the batch is unchanged.
                    grads = {k: v.copy() for k, v in grads.items()}
                    for v in grads.values():
                        delta = 0.5 * v[1]
                        v[0] += delta
                        v[1] -= delta
                return grad_in, grads

        report = check_layer(BuggyPerSample(3, 2, rng=0), rng.normal(size=(4, 3)), rng=1)
        assert not report.passed
        assert max(report.per_sample_errors.values()) < 1e-8
        assert max(report.per_sample_fd_errors.values()) > 1e-3

    def test_report_str(self, rng):
        report = check_layer(Linear(2, 2, rng=0), rng.normal(size=(3, 2)), rng=1)
        text = str(report)
        assert "PASSED" in text and "weight" in text

    def test_skip_per_sample(self, rng):
        report = check_layer(
            Linear(2, 2, rng=0), rng.normal(size=(3, 2)), rng=1, check_per_sample=False
        )
        assert report.per_sample_errors == {}
        assert report.per_sample_fd_errors == {}


def _away_from_zero(rng, shape, margin=0.05):
    """Random input with no coordinate near a ReLU/LeakyReLU kink."""
    x = rng.normal(size=shape)
    x[np.abs(x) < margin] = margin
    return x


# One spec per layer exported from repro.nn: constructor and example input.
# ``train`` mirrors check_layer's flag (True for layers whose train path
# differs and must be the one differentiated); ``per_sample`` is False only
# for BatchNorm2d, which refuses the per-sample path by design.
LAYER_SPECS = {
    "Linear": dict(build=lambda: nn.Linear(4, 3, rng=0), x=lambda rng: rng.normal(size=(5, 4))),
    "ReLU": dict(build=nn.ReLU, x=lambda rng: _away_from_zero(rng, (3, 6))),
    "Flatten": dict(build=nn.Flatten, x=lambda rng: rng.normal(size=(3, 2, 2, 2))),
    "Conv2d": dict(
        build=lambda: nn.Conv2d(2, 3, 3, stride=1, padding=1, rng=0),
        x=lambda rng: rng.normal(size=(2, 2, 5, 5)),
    ),
    "MaxPool2d": dict(build=lambda: nn.MaxPool2d(2), x=lambda rng: rng.normal(size=(2, 2, 4, 4))),
    "AvgPool2d": dict(build=lambda: nn.AvgPool2d(2), x=lambda rng: rng.normal(size=(2, 2, 4, 4))),
    "GlobalAvgPool2d": dict(
        build=nn.GlobalAvgPool2d, x=lambda rng: rng.normal(size=(2, 3, 4, 4))
    ),
    "GroupNorm": dict(
        build=lambda: nn.GroupNorm(2, 4), x=lambda rng: rng.normal(size=(2, 4, 3, 3))
    ),
    "LayerNorm": dict(
        build=lambda: nn.LayerNorm((3, 4)), x=lambda rng: rng.normal(size=(2, 3, 4))
    ),
    "BatchNorm2d": dict(
        build=lambda: nn.BatchNorm2d(3),
        x=lambda rng: rng.normal(size=(2, 3, 4, 4)),
        train=True,
        per_sample=False,
    ),
    "Tanh": dict(build=nn.Tanh, x=lambda rng: rng.normal(size=(3, 5))),
    "Sigmoid": dict(build=nn.Sigmoid, x=lambda rng: rng.normal(size=(3, 5))),
    "LeakyReLU": dict(
        build=lambda: nn.LeakyReLU(0.1), x=lambda rng: _away_from_zero(rng, (3, 5))
    ),
    "Softplus": dict(build=nn.Softplus, x=lambda rng: rng.normal(size=(3, 5))),
    # Active dropout redraws its mask every forward, so only the
    # deterministic rate-0 configuration is finite-difference checkable.
    "Dropout": dict(build=lambda: nn.Dropout(0.0), x=lambda rng: rng.normal(size=(3, 5))),
    "ResidualBlock": dict(
        build=lambda: nn.ResidualBlock(2, 2, rng=0),
        x=lambda rng: rng.normal(size=(2, 2, 4, 4)),
    ),
    "ResidualBlock_projection": dict(
        build=lambda: nn.ResidualBlock(2, 3, stride=2, rng=0),
        x=lambda rng: rng.normal(size=(2, 2, 4, 4)),
    ),
    "Embedding": dict(
        build=lambda: nn.Embedding(7, 4, rng=0),
        x=lambda rng: rng.integers(0, 7, size=(3, 2)).astype(np.float64),
    ),
    "SequenceMean": dict(build=nn.SequenceMean, x=lambda rng: rng.normal(size=(3, 4, 5))),
}


class TestLayerCoverage:
    def test_every_exported_layer_has_a_spec(self):
        """New layers exported from repro.nn must add a gradcheck spec."""
        exported = {
            name
            for name in nn.__all__
            if isinstance(getattr(nn, name), type)
            and issubclass(getattr(nn, name), Layer)
            and getattr(nn, name) is not Layer
        }
        covered = {name.split("_")[0] for name in LAYER_SPECS}
        assert exported <= covered, f"layers missing gradcheck specs: {exported - covered}"

    @pytest.mark.parametrize("name", sorted(LAYER_SPECS))
    def test_layer_gradients(self, name, rng):
        spec = LAYER_SPECS[name]
        report = check_layer(
            spec["build"](),
            spec["x"](rng),
            rng=1,
            train=spec.get("train", False),
            check_per_sample=spec.get("per_sample", True),
        )
        assert report.passed, f"{name}:\n{report}"

    @pytest.mark.parametrize(
        "name", [n for n, s in sorted(LAYER_SPECS.items()) if s.get("per_sample", True)]
    )
    def test_per_sample_gradients_exist_where_required(self, name, rng):
        """Parametric layers must expose per-sample grads (DP-SGD's input)."""
        spec = LAYER_SPECS[name]
        layer = spec["build"]()
        report = check_layer(layer, spec["x"](rng), rng=1, train=spec.get("train", False))
        if layer.params():
            assert set(report.per_sample_fd_errors) == set(layer.params())
            assert max(report.per_sample_fd_errors.values()) <= 1e-5

    def test_batchnorm_refuses_per_sample(self, rng):
        layer = nn.BatchNorm2d(3)
        layer.forward(rng.normal(size=(2, 3, 4, 4)), train=True)
        with pytest.raises(RuntimeError, match="GroupNorm"):
            layer.backward(rng.normal(size=(2, 3, 4, 4)), per_sample=True)
