"""Tests for GroupNorm, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import GroupNorm
from tests.nn.test_layers import (
    check_input_gradient,
    check_param_gradients,
    check_per_sample_consistency,
)


class TestGroupNormForward:
    def test_normalises_groups(self, rng):
        layer = GroupNorm(2, 4)
        x = rng.normal(loc=5.0, scale=3.0, size=(3, 4, 6, 6))
        out = layer.forward(x)
        grouped = out.reshape(3, 2, -1)
        assert np.allclose(grouped.mean(axis=2), 0.0, atol=1e-10)
        assert np.allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_affine_params_applied(self, rng):
        layer = GroupNorm(1, 2)
        layer.set_param("gamma", np.array([2.0, 2.0]))
        layer.set_param("beta", np.array([1.0, 1.0]))
        x = rng.normal(size=(2, 2, 3, 3))
        out = layer.forward(x)
        plain = GroupNorm(1, 2).forward(x)
        assert np.allclose(out, 2.0 * plain + 1.0)

    def test_per_sample_statistics(self, rng):
        """GroupNorm must not mix samples: each sample's output depends only on itself."""
        layer = GroupNorm(2, 4)
        x = rng.normal(size=(4, 4, 3, 3))
        full = layer.forward(x, train=False)
        solo = np.concatenate(
            [layer.forward(x[i : i + 1], train=False) for i in range(4)]
        )
        assert np.allclose(full, solo)

    def test_invalid_group_count(self):
        with pytest.raises(ValueError, match="divisible"):
            GroupNorm(3, 4)

    def test_channel_validation(self):
        with pytest.raises(ValueError, match="expected"):
            GroupNorm(2, 4).forward(np.zeros((1, 3, 2, 2)))


class TestGroupNormGradients:
    def test_input_gradient(self, rng):
        check_input_gradient(GroupNorm(2, 4), rng.normal(size=(2, 4, 3, 3)), atol=1e-5)

    def test_param_gradients(self, rng):
        layer = GroupNorm(2, 4)
        layer.gamma = rng.normal(size=4)
        layer.beta = rng.normal(size=4)
        check_param_gradients(layer, rng.normal(size=(2, 4, 3, 3)), atol=1e-5)

    def test_per_sample_gradients(self, rng):
        check_per_sample_consistency(GroupNorm(2, 4), rng.normal(size=(3, 4, 3, 3)))


class TestLayerNorm:
    def test_normalises_per_sample(self, rng):
        from repro.nn import LayerNorm

        layer = LayerNorm((4, 3, 3))
        x = rng.normal(loc=2.0, scale=5.0, size=(5, 4, 3, 3))
        out = layer.forward(x)
        flat = out.reshape(5, -1)
        assert np.allclose(flat.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(flat.std(axis=1), 1.0, atol=1e-3)

    def test_samples_independent(self, rng):
        from repro.nn import LayerNorm

        layer = LayerNorm((6,))
        x = rng.normal(size=(4, 6))
        full = layer.forward(x, train=False)
        solo = np.concatenate([layer.forward(x[i : i + 1], train=False) for i in range(4)])
        assert np.allclose(full, solo)

    def test_input_gradient(self, rng):
        from repro.nn import LayerNorm
        from tests.nn.test_layers import check_input_gradient

        check_input_gradient(LayerNorm((5,)), rng.normal(size=(3, 5)), atol=1e-5)

    def test_param_gradients(self, rng):
        from repro.nn import LayerNorm
        from tests.nn.test_layers import check_param_gradients

        layer = LayerNorm((4,))
        layer.gamma = rng.normal(size=4)
        check_param_gradients(layer, rng.normal(size=(3, 4)), atol=1e-5)

    def test_per_sample_gradients(self, rng):
        from repro.nn import LayerNorm
        from tests.nn.test_layers import check_per_sample_consistency

        check_per_sample_consistency(LayerNorm((4,)), rng.normal(size=(3, 4)))

    def test_scalar_shape_argument(self, rng):
        from repro.nn import LayerNorm

        layer = LayerNorm(7)
        assert layer.forward(rng.normal(size=(2, 7))).shape == (2, 7)

    def test_shape_mismatch(self, rng):
        from repro.nn import LayerNorm

        with pytest.raises(ValueError, match="per-sample shape"):
            LayerNorm((5,)).forward(rng.normal(size=(2, 6)))


class TestBatchNorm2d:
    def test_normalises_batch_statistics(self, rng):
        from repro.nn import BatchNorm2d

        layer = BatchNorm2d(3)
        x = rng.normal(loc=4.0, scale=2.0, size=(8, 3, 5, 5))
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_used_at_inference(self, rng):
        from repro.nn import BatchNorm2d

        layer = BatchNorm2d(2, momentum=1.0)  # adopt batch stats immediately
        x = rng.normal(loc=3.0, size=(16, 2, 4, 4))
        layer.forward(x, train=True)
        out = layer.forward(x, train=False)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_input_gradient(self, rng):
        from repro.nn import BatchNorm2d
        from tests.nn.test_layers import check_input_gradient

        # Numerical check against the *training-mode* forward, whose batch
        # statistics depend on x; freeze the running-stat update by using a
        # fresh layer inside the scalar function via train=True caching.
        layer = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 3, 3))
        out = layer.forward(x, train=True)
        r = rng.normal(size=out.shape)
        grad_in, _ = layer.backward(r)

        def scalar(x_):
            probe = BatchNorm2d(2)
            probe.gamma, probe.beta = layer.gamma, layer.beta
            return float(np.sum(probe.forward(x_, train=True) * r))

        from tests.conftest import numerical_gradient

        num = numerical_gradient(scalar, x.copy())
        assert np.allclose(grad_in, num, atol=1e-5)

    def test_per_sample_refused_with_dp_guidance(self, rng):
        from repro.nn import BatchNorm2d

        layer = BatchNorm2d(2)
        layer.forward(rng.normal(size=(4, 2, 3, 3)), train=True)
        with pytest.raises(RuntimeError, match="GroupNorm"):
            layer.backward(np.ones((4, 2, 3, 3)), per_sample=True)

    def test_channel_mismatch(self, rng):
        from repro.nn import BatchNorm2d

        with pytest.raises(ValueError, match="expected"):
            BatchNorm2d(3).forward(rng.normal(size=(2, 2, 4, 4)))
