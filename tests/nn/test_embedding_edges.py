"""Embedding / SequenceMean edge cases: empty batches, padding, pooling.

Covers the bounds-check bypass (empty batches used to sail past the token
range check via vacuous min/max), the ``padding_idx`` gradient/mean-mass
semantics, and the broadcast-view pooling backward that replaced
``np.repeat``.
"""

import numpy as np
import pytest

from repro.models.text import build_text_classifier
from repro.nn.embedding import Embedding, SequenceMean


class TestEmptyBatches:
    def test_zero_samples_is_noop(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb.forward(np.zeros((0, 5), dtype=np.int64))
        assert out.shape == (0, 5, 4)
        _, grads = emb.backward(np.zeros((0, 5, 4)))
        np.testing.assert_array_equal(grads["weight"], 0.0)

    def test_zero_length_sequence_rejected(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="zero sequence length"):
            emb.forward(np.zeros((3, 0), dtype=np.int64))

    def test_zero_length_pool_rejected(self):
        with pytest.raises(ValueError, match="zero-length sequence"):
            SequenceMean().forward(np.zeros((3, 0, 4)))

    def test_out_of_range_still_rejected_near_empty(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="must lie in"):
            emb.forward(np.array([[10]]))
        with pytest.raises(ValueError, match="must lie in"):
            emb.forward(np.array([[-1]]))


class TestPaddingIdx:
    def test_padding_row_initialized_to_zero(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0), padding_idx=0)
        np.testing.assert_array_equal(emb.weight[0], 0.0)

    def test_invalid_padding_idx_rejected(self):
        with pytest.raises(ValueError, match="padding_idx"):
            Embedding(10, 4, padding_idx=10)

    def test_padded_positions_get_no_gradient(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0), padding_idx=0)
        tokens = np.array([[1, 2, 0, 0]])
        emb.forward(tokens, train=True)
        _, grads = emb.backward(np.ones((1, 4, 4)))
        np.testing.assert_array_equal(grads["weight"][0], 0.0)
        assert np.all(grads["weight"][[1, 2]] != 0)

    def test_ghost_norms_exclude_padding(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0), padding_idx=0)
        tokens = np.array([[1, 2, 0, 0], [1, 2, 3, 4]])
        emb.forward(tokens, train=True)
        gout = np.ones((2, 4, 4))
        _, norm_sq = emb.backward_norm_sq(gout)
        # Sample 0's norm must equal an unpadded 2-token sample's.
        emb2 = Embedding(10, 4, rng=np.random.default_rng(0))
        emb2.forward(np.array([[1, 2]]), train=True)
        _, ref = emb2.backward_norm_sq(np.ones((1, 2, 4)))
        assert norm_sq[0] == pytest.approx(ref[0], rel=1e-12)

    def test_masked_mean_divides_by_valid_count(self):
        emb = Embedding(10, 2, rng=np.random.default_rng(0), padding_idx=0)
        pool = SequenceMean(mask_source=emb)
        tokens = np.array([[1, 2, 0, 0]])
        x = emb.forward(tokens, train=True)
        out = pool.forward(x, train=True)
        np.testing.assert_allclose(out[0], (emb.weight[1] + emb.weight[2]) / 2)

    def test_all_padding_sample_pools_to_zero(self):
        emb = Embedding(10, 2, rng=np.random.default_rng(0), padding_idx=0)
        pool = SequenceMean(mask_source=emb)
        x = emb.forward(np.array([[0, 0, 0]]), train=True)
        np.testing.assert_array_equal(pool.forward(x, train=True), 0.0)

    def test_mask_refreshed_in_eval_mode(self):
        emb = Embedding(10, 2, rng=np.random.default_rng(0), padding_idx=0)
        pool = SequenceMean(mask_source=emb)
        x = emb.forward(np.array([[1, 0]]), train=True)
        pool.forward(x, train=True)
        # Eval forward with a different shape must not reuse the stale mask.
        x2 = emb.forward(np.array([[1, 2, 3]]), train=False)
        out = pool.forward(x2, train=False)
        np.testing.assert_allclose(
            out[0], (emb.weight[1] + emb.weight[2] + emb.weight[3]) / 3
        )

    def test_stale_mask_shape_mismatch_raises(self):
        emb = Embedding(10, 2, rng=np.random.default_rng(0), padding_idx=0)
        pool = SequenceMean(mask_source=emb)
        emb.forward(np.array([[1, 0]]), train=True)
        with pytest.raises(RuntimeError, match="pad mask shape"):
            pool.forward(np.zeros((2, 5, 2)), train=True)

    def test_classifier_gradcheck_with_padding(self):
        model = build_text_classifier(
            12, 3, embedding_dim=4, padding_idx=0, rng=np.random.default_rng(0)
        )
        tokens = np.array([[1, 2, 0, 0], [3, 4, 5, 0]])
        y = np.array([0, 2])
        losses, grads = model.loss_and_per_sample_gradients(tokens, y)
        flat = grads.mean(axis=0)
        params = model.get_params()
        eps = 1e-6
        rng = np.random.default_rng(1)
        for idx in rng.choice(params.size, size=12, replace=False):
            bumped = params.copy()
            bumped[idx] += eps
            model.set_params(bumped)
            up = model.loss.per_sample(model.forward(tokens, train=False), y).mean()
            bumped[idx] -= 2 * eps
            model.set_params(bumped)
            down = model.loss.per_sample(model.forward(tokens, train=False), y).mean()
            model.set_params(params)
            assert flat[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-5)


class TestBroadcastPoolBackward:
    def test_backward_matches_repeat_reference(self):
        pool = SequenceMean()
        x = np.random.default_rng(0).normal(size=(3, 5, 4))
        pool.forward(x, train=True)
        gout = np.random.default_rng(1).normal(size=(3, 4))
        grad, _ = pool.backward(gout)
        reference = np.repeat((gout / 5)[:, None, :], 5, axis=1)
        np.testing.assert_array_equal(grad, reference)  # bit-identical

    def test_backward_is_view_not_copy(self):
        pool = SequenceMean()
        x = np.zeros((2, 100, 8))
        pool.forward(x, train=True)
        grad, _ = pool.backward(np.ones((2, 8)))
        # The whole point: O(B*D) memory, not O(B*L*D).
        assert grad.base is not None
        assert grad.strides[1] == 0

    def test_masked_backward_zeroes_padded_positions(self):
        emb = Embedding(10, 2, rng=np.random.default_rng(0), padding_idx=0)
        pool = SequenceMean(mask_source=emb)
        x = emb.forward(np.array([[1, 2, 0]]), train=True)
        pool.forward(x, train=True)
        grad, _ = pool.backward(np.ones((1, 2)))
        np.testing.assert_array_equal(grad[0, 2], 0.0)
        np.testing.assert_allclose(grad[0, 0], 0.5)  # 1 / count(=2)
