"""Tests for Sequential: flat parameter vector and gradient APIs."""

import numpy as np
import pytest

from repro.nn import Flatten, Linear, ReLU, Sequential, SoftmaxCrossEntropy
from tests.conftest import numerical_gradient


def small_mlp(rng_seed=0):
    return Sequential(
        [Linear(6, 8, rng=rng_seed), ReLU(), Linear(8, 3, rng=rng_seed + 1)],
        SoftmaxCrossEntropy(),
    )


class TestParams:
    def test_num_params(self):
        model = small_mlp()
        assert model.num_params == 6 * 8 + 8 + 8 * 3 + 3

    def test_get_set_round_trip(self, rng):
        model = small_mlp()
        flat = model.get_params()
        new = rng.normal(size=flat.shape)
        model.set_params(new)
        assert np.allclose(model.get_params(), new)

    def test_set_wrong_shape(self):
        with pytest.raises(ValueError, match="expected flat params"):
            small_mlp().set_params(np.zeros(3))

    def test_set_params_changes_forward(self, rng):
        model = small_mlp()
        x = rng.normal(size=(4, 6))
        before = model.forward(x, train=False)
        model.set_params(model.get_params() * 2.0)
        after = model.forward(x, train=False)
        assert not np.allclose(before, after)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestGradients:
    def test_mean_gradient_matches_numerical(self, rng):
        model = small_mlp()
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        _, grad = model.loss_and_gradient(x, y)

        flat0 = model.get_params()

        def scalar(p):
            model.set_params(p)
            val = model.mean_loss(x, y)
            model.set_params(flat0)
            return val

        num = numerical_gradient(scalar, flat0.copy())
        assert np.allclose(grad, num, atol=1e-6)

    def test_per_sample_gradients_average_to_mean(self, rng):
        model = small_mlp()
        x = rng.normal(size=(7, 6))
        y = rng.integers(0, 3, size=7)
        _, mean_grad = model.loss_and_gradient(x, y)
        _, per_sample = model.loss_and_per_sample_gradients(x, y)
        assert per_sample.shape == (7, model.num_params)
        assert np.allclose(per_sample.mean(axis=0), mean_grad, atol=1e-12)

    def test_per_sample_rows_match_isolated_samples(self, rng):
        model = small_mlp()
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        _, per_sample = model.loss_and_per_sample_gradients(x, y)
        for j in range(4):
            _, single = model.loss_and_gradient(x[j : j + 1], y[j : j + 1])
            assert np.allclose(per_sample[j], single, atol=1e-12)

    def test_losses_match_loss_object(self, rng):
        model = small_mlp()
        x = rng.normal(size=(3, 6))
        y = np.array([0, 1, 2])
        losses, _ = model.loss_and_per_sample_gradients(x, y)
        expected = model.loss.per_sample(model.forward(x, train=False), y)
        assert np.allclose(losses, expected)


class TestInference:
    def test_predict_shape(self, rng):
        model = small_mlp()
        preds = model.predict(rng.normal(size=(9, 6)))
        assert preds.shape == (9,)
        assert np.all((preds >= 0) & (preds < 3))

    def test_accuracy_bounds(self, rng):
        model = small_mlp()
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 3, size=20)
        acc = model.accuracy(x, y)
        assert 0.0 <= acc <= 1.0

    def test_flatten_in_pipeline(self, rng):
        model = Sequential([Flatten(), Linear(12, 2, rng=0)], SoftmaxCrossEntropy())
        out = model.forward(rng.normal(size=(3, 3, 4)), train=False)
        assert out.shape == (3, 2)

    def test_repr_mentions_params(self):
        assert "params=" in repr(small_mlp())
