"""Ghost-norm parity: ``backward_norm_sq`` vs materialized per-sample grads.

Every parametric layer's ghost squared norm must equal the squared L2 norm
of its materialized per-sample parameter gradient, and the returned input
gradient must match the plain backward pass.  These are the invariants the
ghost-clipping fast path (:meth:`Sequential.loss_and_clipped_grad_sum`)
rests on.
"""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Embedding,
    Flatten,
    GroupNorm,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from repro.nn.normalization import BatchNorm2d


def materialized_norm_sq(layer, grad_out):
    """Reference: per-sample norm^2 via the full per-sample gradients."""
    _, grads = layer.backward(grad_out, per_sample=True)
    batch = grad_out.shape[0]
    total = np.zeros(batch)
    for g in grads.values():
        total += np.einsum("bk,bk->b", g.reshape(batch, -1), g.reshape(batch, -1))
    return total


def check_ghost_parity(layer, x, rtol=1e-12):
    rng = np.random.default_rng(0)
    out = layer.forward(x, train=True)
    grad_out = rng.normal(size=out.shape)

    grad_in_ref, _ = layer.backward(grad_out, per_sample=False)
    expected = materialized_norm_sq(layer, grad_out)

    grad_in, norm_sq = layer.backward_norm_sq(grad_out)
    assert norm_sq.shape == (x.shape[0],)
    assert np.allclose(norm_sq, expected, rtol=rtol, atol=1e-12), (
        f"{layer!r}: ghost norm^2 max rel err "
        f"{np.abs(norm_sq - expected).max() / (expected.max() + 1e-30)}"
    )
    assert np.allclose(grad_in, grad_in_ref, rtol=1e-12, atol=1e-12)


class TestLinearGhost:
    def test_with_bias(self):
        rng = np.random.default_rng(1)
        check_ghost_parity(Linear(7, 5, rng=0), rng.normal(size=(6, 7)))

    def test_without_bias(self):
        rng = np.random.default_rng(2)
        check_ghost_parity(Linear(4, 3, rng=0, bias=False), rng.normal(size=(5, 4)))

    def test_single_sample(self):
        rng = np.random.default_rng(3)
        check_ghost_parity(Linear(3, 2, rng=0), rng.normal(size=(1, 3)))


class TestConv2dGhost:
    @pytest.mark.parametrize(
        "stride,padding,bias",
        [(1, 0, True), (1, 1, True), (2, 1, True), (1, 0, False)],
    )
    def test_parity(self, stride, padding, bias):
        rng = np.random.default_rng(4)
        layer = Conv2d(3, 4, 3, stride=stride, padding=padding, rng=0, bias=bias)
        check_ghost_parity(layer, rng.normal(size=(5, 3, 8, 8)))

    def test_gram_branch(self):
        # Small spatial extent: L^2 <= O*K selects the Gram-trick branch.
        rng = np.random.default_rng(5)
        layer = Conv2d(2, 8, 3, rng=0)
        x = rng.normal(size=(4, 2, 4, 4))  # L = 4 output positions
        assert 4 * 4 <= 8 * (2 * 3 * 3)
        check_ghost_parity(layer, x)

    def test_direct_branch(self):
        # Large spatial extent: L^2 > O*K materializes per-sample (B, O, K).
        rng = np.random.default_rng(6)
        layer = Conv2d(1, 1, 1, rng=0)
        x = rng.normal(size=(3, 1, 6, 6))  # L = 36, O*K = 1
        assert 36 * 36 > 1 * 1
        check_ghost_parity(layer, x)


class TestEmbeddingGhost:
    def test_distinct_tokens(self):
        layer = Embedding(11, 6, rng=0)
        tokens = np.array([[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        check_ghost_parity(layer, tokens)

    def test_repeated_tokens(self):
        # Repeated tokens make per-row gradients interact: the positional
        # Gram must be masked by token equality, not just summed.
        layer = Embedding(5, 4, rng=0)
        tokens = np.array([[1, 1, 1, 2], [0, 3, 0, 3], [4, 4, 4, 4]])
        check_ghost_parity(layer, tokens)


class TestNormalizationGhost:
    def test_layernorm(self):
        rng = np.random.default_rng(7)
        layer = LayerNorm(6)
        layer.gamma = rng.normal(1.0, 0.1, size=layer.gamma.shape)
        layer.beta = rng.normal(0.0, 0.1, size=layer.beta.shape)
        check_ghost_parity(layer, rng.normal(size=(5, 6)))

    def test_groupnorm(self):
        rng = np.random.default_rng(8)
        layer = GroupNorm(2, 4)
        layer.gamma = rng.normal(1.0, 0.1, size=layer.gamma.shape)
        check_ghost_parity(layer, rng.normal(size=(3, 4, 5, 5)))

    def test_batchnorm_rejected(self):
        # BatchNorm couples samples; it has no per-sample gradients and the
        # ghost pass must refuse exactly like backward(per_sample=True).
        rng = np.random.default_rng(9)
        layer = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 2, 2))
        out = layer.forward(x, train=True)
        with pytest.raises(RuntimeError, match="per-sample"):
            layer.backward_norm_sq(np.ones_like(out))


class TestResidualGhost:
    def test_identity_shortcut(self):
        rng = np.random.default_rng(10)
        check_ghost_parity(ResidualBlock(3, 3, rng=0), rng.normal(size=(4, 3, 6, 6)))

    def test_projection_shortcut(self):
        rng = np.random.default_rng(11)
        block = ResidualBlock(3, 5, stride=2, rng=0)
        check_ghost_parity(block, rng.normal(size=(4, 3, 6, 6)))


class TestParameterFreeGhost:
    @pytest.mark.parametrize("layer,shape", [
        (ReLU(), (4, 6)),
        (Flatten(), (4, 2, 3, 3)),
        (MaxPool2d(2), (4, 2, 4, 4)),
    ])
    def test_zero_contribution(self, layer, shape):
        rng = np.random.default_rng(12)
        x = rng.normal(size=shape)
        out = layer.forward(x, train=True)
        grad_out = rng.normal(size=out.shape)
        grad_in_ref, _ = layer.backward(grad_out, per_sample=False)
        layer.forward(x, train=True)
        grad_in, norm_sq = layer.backward_norm_sq(grad_out)
        assert np.array_equal(norm_sq, np.zeros(shape[0]))
        assert np.allclose(grad_in, grad_in_ref)


class TestModelGhostNorms:
    @pytest.mark.parametrize("builder", ["cnn", "resnet", "text", "mlp"])
    def test_full_model_parity(self, builder):
        from repro.models import build_cnn, build_resnet
        from repro.models.mlp import build_mlp
        from repro.models.text import build_text_classifier

        rng = np.random.default_rng(13)
        if builder == "cnn":
            model = build_cnn(input_shape=(1, 8, 8), rng=0)
            x = rng.normal(size=(6, 1, 8, 8))
        elif builder == "resnet":
            model = build_resnet(input_shape=(3, 8, 8), rng=0)
            x = rng.normal(size=(4, 3, 8, 8))
        elif builder == "text":
            model = build_text_classifier(20, 3, rng=0)
            x = rng.integers(0, 20, size=(6, 5))
        else:
            model = build_mlp((10,), (8,), 3, rng=0)
            x = rng.normal(size=(6, 10))
        y = rng.integers(0, 3, size=x.shape[0])

        losses, per_sample = model.loss_and_per_sample_gradients(x, y)
        expected = np.sqrt(np.einsum("bp,bp->b", per_sample, per_sample))

        outputs = model.forward(x, train=True)
        grad_out = model.loss.gradient(outputs, y)
        norms, _ = model.per_sample_grad_norms(grad_out)
        assert np.allclose(norms, expected, rtol=1e-10, atol=1e-12), (
            np.abs(norms - expected).max()
        )
