"""Tests for per-sample losses."""

import numpy as np
import pytest

from repro.nn import MeanSquaredError, SoftmaxCrossEntropy
from tests.conftest import numerical_gradient


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        losses = SoftmaxCrossEntropy().per_sample(logits, [0, 1])
        assert np.all(losses < 1e-10)

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 10))
        losses = SoftmaxCrossEntropy().per_sample(logits, [0, 5, 9])
        assert np.allclose(losses, np.log(10))

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        grad = loss.gradient(logits, targets)

        def scalar(lg):
            return float(np.sum(loss.per_sample(lg, targets)))

        num = numerical_gradient(scalar, logits.copy())
        assert np.allclose(grad, num, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        grad = SoftmaxCrossEntropy().gradient(rng.normal(size=(6, 4)), [0, 1, 2, 3, 0, 1])
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_mean(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(8, 3))
        y = rng.integers(0, 3, size=8)
        assert loss.mean(logits, y) == pytest.approx(np.mean(loss.per_sample(logits, y)))

    def test_predict(self):
        logits = np.array([[1.0, 3.0, 2.0], [5.0, 0.0, 0.0]])
        assert np.array_equal(SoftmaxCrossEntropy().predict(logits), [1, 0])


class TestMeanSquaredError:
    def test_per_sample_values(self):
        losses = MeanSquaredError().per_sample(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert losses[0] == pytest.approx(5.0)

    def test_gradient_matches_numerical(self, rng):
        loss = MeanSquaredError()
        outputs = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 4))
        grad = loss.gradient(outputs, targets)

        def scalar(o):
            return float(np.sum(loss.per_sample(o, targets)))

        num = numerical_gradient(scalar, outputs.copy())
        assert np.allclose(grad, num, atol=1e-6)

    def test_1d_targets_promoted(self):
        losses = MeanSquaredError().per_sample(np.array([[2.0]]), np.array([1.0]))
        assert losses[0] == pytest.approx(1.0)
