"""Tests for the embedding/text substrate."""

import numpy as np
import pytest

from repro.nn.embedding import Embedding, SequenceMean


class TestEmbedding:
    def test_lookup(self, rng):
        layer = Embedding(10, 4, rng=0)
        tokens = np.array([[1, 2], [3, 1]])
        out = layer.forward(tokens)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], layer.weight[1])
        assert np.allclose(out[1, 1], layer.weight[1])

    def test_float_integer_tokens_accepted(self):
        layer = Embedding(5, 3, rng=0)
        out = layer.forward(np.array([[1.0, 4.0]]))
        assert out.shape == (1, 2, 3)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            Embedding(5, 3, rng=0).forward(np.array([[1.5]]))

    def test_out_of_vocab_rejected(self):
        with pytest.raises(ValueError, match="token ids"):
            Embedding(5, 3, rng=0).forward(np.array([[5]]))

    def test_summed_gradient_scatter(self, rng):
        layer = Embedding(6, 2, rng=0)
        tokens = np.array([[0, 0, 1]])
        layer.forward(tokens, train=True)
        grad_out = np.ones((1, 3, 2))
        _, grads = layer.backward(grad_out)
        # Token 0 appears twice, token 1 once, others never.
        assert np.allclose(grads["weight"][0], 2.0)
        assert np.allclose(grads["weight"][1], 1.0)
        assert np.allclose(grads["weight"][2:], 0.0)

    def test_per_sample_matches_isolated(self, rng):
        layer = Embedding(8, 3, rng=0)
        tokens = rng.integers(0, 8, size=(4, 5))
        layer.forward(tokens, train=True)
        grad_out = rng.normal(size=(4, 5, 3))
        _, per_sample = layer.backward(grad_out, per_sample=True)
        _, summed = (layer.forward(tokens, train=True), layer.backward(grad_out))[1]
        assert np.allclose(per_sample["weight"].sum(axis=0), summed["weight"])
        for j in range(4):
            layer.forward(tokens[j : j + 1], train=True)
            _, single = layer.backward(grad_out[j : j + 1])
            assert np.allclose(per_sample["weight"][j], single["weight"])

    def test_numerical_param_gradient(self, rng):
        from repro.nn.gradcheck import numerical_gradient

        layer = Embedding(5, 2, rng=0)
        tokens = np.array([[0, 3], [2, 2]])
        out = layer.forward(tokens, train=True)
        r = rng.normal(size=out.shape)
        _, grads = layer.backward(r)
        original = layer.weight.copy()

        def scalar(w):
            layer.set_param("weight", w)
            value = float(np.sum(layer.forward(tokens, train=False) * r))
            layer.set_param("weight", original)
            return value

        num = numerical_gradient(scalar, original.copy())
        assert np.allclose(grads["weight"], num, atol=1e-6)


class TestSequenceMean:
    def test_forward(self, rng):
        x = rng.normal(size=(3, 4, 5))
        out = SequenceMean().forward(x)
        assert np.allclose(out, x.mean(axis=1))

    def test_backward_distributes_evenly(self, rng):
        layer = SequenceMean()
        x = rng.normal(size=(2, 4, 3))
        layer.forward(x, train=True)
        grad_in, _ = layer.backward(np.ones((2, 3)))
        assert np.allclose(grad_in, 0.25)

    def test_invalid_shape(self):
        with pytest.raises(ValueError, match="B, L, D"):
            SequenceMean().forward(np.zeros((2, 3)))


class TestTextPipeline:
    def test_dataset_properties(self):
        from repro.data.text_like import make_text_like

        data = make_text_like(200, rng=0, num_classes=4, vocab_size=64)
        assert data.x.shape == (200, 20)
        assert data.num_classes == 4
        assert np.array_equal(data.class_counts(), [50] * 4)
        assert np.allclose(data.x, np.round(data.x))  # integer tokens

    def test_dataset_validation(self):
        from repro.data.text_like import make_text_like

        with pytest.raises(ValueError, match="vocab_size"):
            make_text_like(10, num_classes=4, vocab_size=10)

    def test_classifier_learns(self):
        from repro.core import SgdOptimizer, Trainer
        from repro.data import train_test_split
        from repro.data.text_like import make_text_like
        from repro.models.text import build_text_classifier

        data = make_text_like(800, rng=0, num_classes=4, vocab_size=64)
        train, test = train_test_split(data, rng=0)
        model = build_text_classifier(64, 4, embedding_dim=16, rng=0)
        trainer = Trainer(model, SgdOptimizer(2.0), train, test_data=test, batch_size=64, rng=1)
        history = trainer.train(150, eval_every=150)
        assert history.final_accuracy > 0.7

    def test_geodp_text_training(self):
        from repro.core import GeoDpSgdOptimizer, Trainer
        from repro.data import train_test_split
        from repro.data.text_like import make_text_like
        from repro.models.text import build_text_classifier

        data = make_text_like(600, rng=1, num_classes=4, vocab_size=64)
        train, test = train_test_split(data, rng=1)
        model = build_text_classifier(64, 4, embedding_dim=8, rng=0)
        opt = GeoDpSgdOptimizer(
            2.0, 0.1, 1.0, beta=0.1, rng=2, sensitivity_mode="per_angle"
        )
        trainer = Trainer(model, opt, train, test_data=test, batch_size=64, rng=3)
        history = trainer.train(150, eval_every=150)
        assert history.final_accuracy > 0.4  # well above 25% chance
