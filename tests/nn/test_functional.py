"""Tests for stateless tensor ops: softmax, one-hot, im2col/col2im."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    col2im,
    conv_output_shape,
    im2col,
    log_softmax,
    one_hot,
    relu,
    softmax,
)


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu([-1.0, 0.0, 2.0]), [0.0, 0.0, 2.0])

    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.normal(size=(7, 11)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_overflow_safe(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(4, 6))
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))

    def test_log_softmax_underflow_safe(self):
        out = log_softmax(np.array([[0.0, -2000.0]]))
        assert np.isfinite(out).all()


class TestOneHot:
    def test_basic(self):
        out = one_hot([0, 2, 1], 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            one_hot([3], 3)
        with pytest.raises(ValueError, match="lie in"):
            one_hot([-1], 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            one_hot([[1]], 3)


class TestConvOutputShape:
    def test_no_padding(self):
        assert conv_output_shape(28, 28, 3, 1, 0) == (26, 26)

    def test_same_padding(self):
        assert conv_output_shape(28, 28, 3, 1, 1) == (28, 28)

    def test_stride(self):
        assert conv_output_shape(32, 32, 3, 2, 1) == (16, 16)

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError, match="empty output"):
            conv_output_shape(2, 2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_values_match_naive_extraction(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 1, 0)
        # Patch at output position (1, 2) -> columns index 1*3+2.
        patch = x[0, :, 1:4, 2:5].ravel()
        assert np.allclose(cols[0, :, 1 * 3 + 2], patch)

    def test_conv_equals_naive_convolution(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 1, 1)
        out = np.einsum("ok,bkl->bol", w.reshape(4, -1), cols).reshape(2, 4, 6, 6)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((2, 4, 6, 6))
        for b in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        naive[b, o, i, j] = np.sum(
                            xp[b, :, i : i + 3, j : j + 3] * w[o]
                        )
        assert np.allclose(out, naive)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match="B, C, H, W"):
            im2col(np.zeros((3, 8, 8)), 3)


class TestCol2Im:
    def test_adjoint_property(self, rng):
        """col2im must be the exact adjoint of im2col: <im2col(x), c> = <x, col2im(c)>."""
        x = rng.normal(size=(2, 3, 7, 7))
        for kernel, stride, pad in [(3, 1, 1), (3, 2, 0), (2, 2, 0), (5, 1, 2)]:
            cols = im2col(x, kernel, stride, pad)
            c = rng.normal(size=cols.shape)
            lhs = np.sum(cols * c)
            rhs = np.sum(x * col2im(c, x.shape, kernel, stride, pad))
            assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_counts_overlaps(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((1, 4, 4))  # kernel 2, stride 1 -> 2x2 output
        out = col2im(cols, x_shape, 2, 1, 0)
        # Centre pixel is covered by all four 2x2 patches.
        assert out[0, 0, 1, 1] == 4.0
        assert out[0, 0, 0, 0] == 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(4, 9), st.integers(0, 10**6))
    def test_adjoint_property_random_geometry(self, batch, channels, size, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, channels, size, size))
        kernel = int(rng.integers(1, min(4, size) + 1))
        stride = int(rng.integers(1, 3))
        pad = int(rng.integers(0, 2))
        cols = im2col(x, kernel, stride, pad)
        c = rng.normal(size=cols.shape)
        lhs = np.sum(cols * c)
        rhs = np.sum(x * col2im(c, x.shape, kernel, stride, pad))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)
