"""``set_param`` must validate shapes strictly, never reshape silently.

The old behaviour — ``value.reshape(expected)`` — silently accepted any
same-size array, so a transposed weight matrix or a flattened kernel
loaded without complaint and corrupted the model.  ``coerce_param`` now
requires the exact shape.
"""

import numpy as np
import pytest

from repro.nn.embedding import Embedding
from repro.nn.layers import Conv2d, Linear, coerce_param
from repro.nn.normalization import BatchNorm2d, GroupNorm, LayerNorm


class TestCoerceParam:
    def test_exact_shape_accepted(self):
        out = coerce_param("X", "w", np.ones((2, 3), dtype=np.float32), (2, 3))
        assert out.shape == (2, 3) and out.dtype == np.float64

    def test_same_size_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match=r"X\.w expects shape \(2, 3\)"):
            coerce_param("X", "w", np.ones((3, 2)), (2, 3))

    def test_flattened_rejected(self):
        with pytest.raises(ValueError, match="expects shape"):
            coerce_param("X", "w", np.ones(6), (2, 3))


@pytest.mark.parametrize(
    "layer,name",
    [
        (Linear(3, 4, rng=np.random.default_rng(0)), "weight"),
        (Linear(3, 4, rng=np.random.default_rng(0)), "bias"),
        (Conv2d(2, 3, 3, rng=np.random.default_rng(0)), "weight"),
        (Conv2d(2, 3, 3, rng=np.random.default_rng(0)), "bias"),
        (GroupNorm(1, 4), "gamma"),
        (GroupNorm(1, 4), "beta"),
        (LayerNorm((4,)), "gamma"),
        (BatchNorm2d(4), "gamma"),
        (Embedding(5, 3, rng=np.random.default_rng(0)), "weight"),
    ],
)
class TestStrictSetParam:
    def test_exact_shape_round_trips(self, layer, name):
        value = np.arange(layer.params()[name].size, dtype=np.float64).reshape(
            layer.params()[name].shape
        )
        layer.set_param(name, value)
        np.testing.assert_array_equal(layer.params()[name], value)

    def test_transposed_or_flattened_rejected(self, layer, name):
        expected = layer.params()[name].shape
        with pytest.raises(ValueError, match="expects shape"):
            layer.set_param(name, np.zeros(int(np.prod(expected))).reshape(1, -1))

    def test_wrong_size_rejected(self, layer, name):
        with pytest.raises(ValueError, match="expects shape"):
            layer.set_param(name, np.zeros(int(np.prod(layer.params()[name].shape)) + 1))

    def test_unknown_name_rejected(self, layer, name):
        with pytest.raises(KeyError):
            layer.set_param("nonsense", np.zeros(1))
