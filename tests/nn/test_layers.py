"""Layer tests: numerical gradient checks and per-sample gradient semantics.

Every layer's backward pass is checked against central differences, and the
per-sample parameter gradients are checked to (a) sum to the batch gradient
and (b) match gradients computed sample-by-sample.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from tests.conftest import numerical_gradient


def check_input_gradient(layer, x, atol=1e-6):
    """Backward's grad_in must match d(sum of outputs * R)/dx numerically."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, train=True)
    r = rng.normal(size=out.shape)  # random cotangent
    grad_in, _ = layer.backward(r)

    def scalar(x_):
        return float(np.sum(layer.forward(x_, train=False) * r))

    num = numerical_gradient(scalar, x.copy())
    assert np.allclose(grad_in, num, atol=atol), (
        f"{layer!r}: max err {np.abs(grad_in - num).max()}"
    )


def check_param_gradients(layer, x, atol=1e-6):
    """Summed param grads must match numerical gradients of sum(out * R)."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, train=True)
    r = rng.normal(size=out.shape)
    _, grads = layer.backward(r)
    for name, param in layer.params().items():
        original = param.copy()

        def scalar(p):
            layer.set_param(name, p)
            val = float(np.sum(layer.forward(x, train=False) * r))
            layer.set_param(name, original)
            return val

        num = numerical_gradient(scalar, original.copy())
        assert np.allclose(grads[name], num, atol=atol), (
            f"{layer!r}.{name}: max err {np.abs(grads[name] - num).max()}"
        )


def check_per_sample_consistency(layer, x, atol=1e-9):
    """Per-sample grads must sum to the batch grads and match isolated samples."""
    rng = np.random.default_rng(2)
    out = layer.forward(x, train=True)
    r = rng.normal(size=out.shape)
    _, summed = layer.backward(r, per_sample=False)
    layer.forward(x, train=True)
    _, per_sample = layer.backward(r, per_sample=True)
    for name in summed:
        assert per_sample[name].shape[0] == x.shape[0]
        assert np.allclose(per_sample[name].sum(axis=0), summed[name], atol=atol)
    # Each row equals the gradient computed on that sample alone.
    for j in range(x.shape[0]):
        layer.forward(x[j : j + 1], train=True)
        _, single = layer.backward(r[j : j + 1], per_sample=False)
        for name in summed:
            assert np.allclose(per_sample[name][j], single[name], atol=atol)


class TestLinear:
    def test_forward_values(self):
        layer = Linear(2, 2, rng=0)
        layer.set_param("weight", np.array([[1.0, 2.0], [3.0, 4.0]]))
        layer.set_param("bias", np.array([0.5, -0.5]))
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[4.5, 5.5]])

    def test_input_gradient(self, rng):
        check_input_gradient(Linear(5, 3, rng=0), rng.normal(size=(4, 5)))

    def test_param_gradients(self, rng):
        check_param_gradients(Linear(4, 3, rng=0), rng.normal(size=(6, 4)))

    def test_per_sample_gradients(self, rng):
        check_per_sample_consistency(Linear(4, 3, rng=0), rng.normal(size=(5, 4)))

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng=0, bias=False)
        assert "bias" not in layer.params()
        check_param_gradients(layer, rng.normal(size=(4, 3)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError, match="before forward"):
            Linear(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="expected input"):
            Linear(3, 2, rng=0).forward(np.zeros((1, 4)))

    def test_set_unknown_param(self):
        with pytest.raises(KeyError):
            Linear(2, 2, rng=0).set_param("nope", np.zeros(1))


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_input_gradient(self, rng):
        # Keep inputs away from the kink for the numerical check.
        x = rng.normal(size=(3, 6))
        x[np.abs(x) < 0.05] = 0.1
        check_input_gradient(ReLU(), x)

    def test_no_params(self):
        assert ReLU().params() == {}
        assert ReLU().num_params == 0


class TestFlatten:
    def test_round_trip_shape(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        grad_in, _ = layer.backward(out)
        assert grad_in.shape == x.shape

    def test_input_gradient(self, rng):
        check_input_gradient(Flatten(), rng.normal(size=(2, 3, 2, 2)))


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=0)
        out = layer.forward(rng.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_strided_output_shape(self, rng):
        layer = Conv2d(2, 4, 3, stride=2, padding=1, rng=0)
        out = layer.forward(rng.normal(size=(1, 2, 8, 8)))
        assert out.shape == (1, 4, 4, 4)

    def test_input_gradient(self, rng):
        check_input_gradient(
            Conv2d(2, 3, 3, stride=1, padding=1, rng=0), rng.normal(size=(2, 2, 5, 5))
        )

    def test_input_gradient_strided(self, rng):
        check_input_gradient(
            Conv2d(2, 2, 3, stride=2, padding=0, rng=0), rng.normal(size=(2, 2, 7, 7))
        )

    def test_param_gradients(self, rng):
        check_param_gradients(
            Conv2d(2, 3, 3, stride=1, padding=1, rng=0), rng.normal(size=(2, 2, 4, 4))
        )

    def test_per_sample_gradients(self, rng):
        check_per_sample_consistency(
            Conv2d(2, 3, 3, stride=1, padding=1, rng=0), rng.normal(size=(4, 2, 4, 4))
        )

    def test_no_bias(self, rng):
        layer = Conv2d(1, 2, 3, rng=0, bias=False)
        assert "bias" not in layer.params()
        check_param_gradients(layer, rng.normal(size=(2, 1, 5, 5)))

    def test_channel_validation(self):
        with pytest.raises(ValueError, match="expected input"):
            Conv2d(3, 2, 3, rng=0).forward(np.zeros((1, 2, 8, 8)))


class TestMaxPool2d:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_input_gradient(self, rng):
        # Distinct values avoid ties, making max differentiable.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_input_gradient(MaxPool2d(2), x)

    def test_tie_gradient_is_split(self):
        layer = MaxPool2d(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x, train=True)
        grad_in, _ = layer.backward(np.array([[[[4.0]]]]))
        assert np.allclose(grad_in, 1.0)  # 4 split equally among 4 ties

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            MaxPool2d(3).forward(np.zeros((1, 1, 8, 8)))


class TestAvgPool2d:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_input_gradient(self, rng):
        check_input_gradient(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))


class TestGlobalAvgPool2d:
    def test_forward(self, rng):
        x = rng.normal(size=(3, 4, 5, 5))
        out = GlobalAvgPool2d().forward(x)
        assert out.shape == (3, 4)
        assert np.allclose(out, x.mean(axis=(2, 3)))

    def test_input_gradient(self, rng):
        check_input_gradient(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))
