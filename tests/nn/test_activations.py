"""Tests for the extra activation layers and dropout."""

import numpy as np
import pytest

from repro.nn import Dropout, LeakyReLU, Sigmoid, Softplus, Tanh
from tests.nn.test_layers import check_input_gradient


class TestTanh:
    def test_forward(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(Tanh().forward(x), np.tanh(x))

    def test_gradient(self, rng):
        check_input_gradient(Tanh(), rng.normal(size=(3, 5)))

    def test_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 10)) * 100)
        assert np.all(np.abs(out) <= 1.0)


class TestSigmoid:
    def test_forward_values(self):
        out = Sigmoid().forward(np.array([[0.0]]))
        assert out[0, 0] == pytest.approx(0.5)

    def test_gradient(self, rng):
        check_input_gradient(Sigmoid(), rng.normal(size=(3, 5)))

    def test_overflow_safe(self):
        out = Sigmoid().forward(np.array([[1000.0, -1000.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(0.0)


class TestLeakyReLU:
    def test_forward(self):
        out = LeakyReLU(0.1).forward(np.array([[-2.0, 3.0]]))
        assert np.allclose(out, [[-0.2, 3.0]])

    def test_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        x[np.abs(x) < 0.05] = 0.1
        check_input_gradient(LeakyReLU(0.2), x)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)


class TestSoftplus:
    def test_positive_output(self, rng):
        out = Softplus().forward(rng.normal(size=(5, 5)))
        assert np.all(out > 0)

    def test_gradient(self, rng):
        check_input_gradient(Softplus(), rng.normal(size=(3, 5)))

    def test_large_input_linear(self):
        out = Softplus().forward(np.array([[100.0]]))
        assert out[0, 0] == pytest.approx(100.0)


class TestDropout:
    def test_inference_is_identity(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.array_equal(Dropout(0.5, rng=0).forward(x, train=False), x)

    def test_zero_rate_identity_in_train(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.array_equal(Dropout(0.0, rng=0).forward(x, train=True), x)

    def test_expectation_preserved(self):
        x = np.ones((200, 500))
        out = Dropout(0.3, rng=0).forward(x, train=True)
        assert out.mean() == pytest.approx(1.0, abs=0.01)

    def test_mask_fraction(self):
        out = Dropout(0.4, rng=0).forward(np.ones((100, 100)), train=True)
        assert (out == 0).mean() == pytest.approx(0.4, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=0)
        x = rng.normal(size=(5, 8))
        out = layer.forward(x, train=True)
        grad_in, _ = layer.backward(np.ones_like(out))
        assert np.array_equal(grad_in == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMlpBuilder:
    def test_shapes_and_training(self, rng):
        from repro.models import build_mlp

        model = build_mlp((8,), [16, 16], num_classes=3, rng=0)
        out = model.forward(rng.normal(size=(5, 8)), train=False)
        assert out.shape == (5, 3)

    def test_no_hidden_is_logistic(self):
        from repro.models import build_mlp

        model = build_mlp((8,), [], num_classes=3, rng=0)
        assert model.num_params == 8 * 3 + 3

    def test_activations_selectable(self, rng):
        from repro.models import build_mlp

        for act in ("relu", "tanh", "sigmoid", "leaky_relu", "softplus"):
            model = build_mlp((4,), [8], activation=act, rng=0)
            assert model.forward(rng.normal(size=(2, 4)), train=False).shape == (2, 10)

    def test_invalid_activation(self):
        from repro.models import build_mlp

        with pytest.raises(ValueError, match="activation"):
            build_mlp((4,), [8], activation="gelu")

    def test_dropout_mlp_per_sample_grads(self, rng):
        from repro.models import build_mlp

        model = build_mlp((6,), [12], dropout=0.3, rng=0)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 10, size=4)
        _, grads = model.loss_and_per_sample_gradients(x, y)
        assert grads.shape == (4, model.num_params)
        assert np.isfinite(grads).all()

    def test_mlp_learns_xor(self, rng):
        """A hidden layer must solve what logistic regression cannot."""
        from repro.models import build_mlp

        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        model = build_mlp((2,), [16], num_classes=2, activation="tanh", rng=0)
        for _ in range(400):
            _, grad = model.loss_and_gradient(x, y)
            model.set_params(model.get_params() - 0.5 * grad)
        assert model.accuracy(x, y) > 0.9
