"""Parallel-equals-serial guarantees for grids, sweeps and the gradient map.

The fast tests are the tier-1 smoke for the determinism invariant; the
``slow``-marked matrix extends it to workers in {1, 2, 4} across all three
parallel surfaces.  A grid interrupted mid-run must resume only its
unfinished cells, and a cell whose worker crashes must still produce the
serial result through retry.
"""

import os

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, Trainer
from repro.data import make_mnist_like, train_test_split
from repro.experiments.sweep import ParameterSweep
from repro.experiments.training_grid import (
    MethodSpec,
    cell_checkpoint_dir,
    run_grid,
)
from repro.models import build_logistic_regression
from repro.privacy.clipping import FlatClipping
from repro.runtime import JobFailure, parallel_available
from repro.telemetry import MetricsRecorder

needs_fork = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)

METHODS = [
    MethodSpec("DP (B=32)", "dp", 32),
    MethodSpec("GeoDP (B=32,beta=0.5)", "geodp", 32, 0.5),
]


@pytest.fixture(scope="module")
def grid_data():
    return train_test_split(make_mnist_like(140, rng=0, size=8), rng=0)


def builder():
    return build_logistic_regression((1, 8, 8), rng=0)


def tiny_grid(grid_data, *, workers=1, sigmas=(0.5,), model_builder=builder,
              checkpoint_dir=None, telemetry=None, resume=True):
    train, test = grid_data
    return run_grid(
        METHODS,
        model_builder,
        train,
        test,
        sigmas=sigmas,
        iterations=3,
        learning_rate=0.5,
        clip_norm=0.5,
        rng=9,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=1,
        resume=resume,
        workers=workers,
        telemetry=telemetry,
    )


def noisy_measure(a, b, rng):
    return {"m": a * b + float(rng.normal())}


def gradmap_run(data, workers):
    trainer = Trainer(
        builder(),
        DpSgdOptimizer(0.5, FlatClipping(0.5), 0.8, rng=3),
        data,
        batch_size=48,
        microbatch_size=16,
        parallel_grad_workers=workers,
        rng=5,
    )
    with trainer:
        history = trainer.train(3)
        params = trainer.model.get_params().copy()
    return history.losses, params


@needs_fork
class TestSmoke:
    """Fast tier-1 coverage of the parallel = serial invariant."""

    def test_grid_parity(self, grid_data):
        recorder = MetricsRecorder()
        serial = tiny_grid(grid_data, workers=1)
        parallel = tiny_grid(grid_data, workers=2, telemetry=recorder)
        assert parallel == serial
        assert recorder.counters["runtime_cells_scheduled"] == 3
        assert recorder.counters["runtime_jobs_completed"] == 3

    def test_sweep_parity(self):
        sweep = ParameterSweep(noisy_measure, {"a": [1, 2], "b": [3, 4]})
        serial = sweep.run(rng=4, repeats=2, workers=1)
        parallel = sweep.run(rng=4, repeats=2, workers=2)
        assert parallel == serial


@needs_fork
@pytest.mark.slow
class TestDeterminismMatrix:
    """workers in {1, 2, 4} x {grid, sweep, gradmap} are all bit-identical."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_grid(self, grid_data, workers):
        reference = tiny_grid(grid_data, sigmas=(0.5, 1.0))
        result = tiny_grid(grid_data, workers=workers, sigmas=(0.5, 1.0))
        assert result == reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sweep(self, workers):
        sweep = ParameterSweep(noisy_measure, {"a": [1, 2, 3], "b": [3, 4]})
        reference = sweep.run(rng=4, repeats=3)
        assert sweep.run(rng=4, repeats=3, workers=workers) == reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_gradmap(self, grid_data, workers):
        train, _ = grid_data
        ref_losses, ref_params = gradmap_run(train, None)
        losses, params = gradmap_run(train, workers)
        assert losses == ref_losses
        assert np.array_equal(params, ref_params)


@needs_fork
class TestInterruptedGrid:
    def test_resume_skips_finished_cells(self, grid_data, tmp_path):
        """A killed grid resumes bit-identically, re-training only the
        cells that had not finished."""
        reference = tiny_grid(grid_data, checkpoint_dir=tmp_path / "ref")

        calls = {"n": 0}

        def dying_builder():
            calls["n"] += 1
            if calls["n"] >= 3:  # cells 0 and 1 finish, cell 2 dies
                raise RuntimeError("interrupted")
            return builder()

        ckpt = tmp_path / "run"
        with pytest.raises(JobFailure):
            tiny_grid(grid_data, model_builder=dying_builder, checkpoint_dir=ckpt)

        finished = [
            cell_checkpoint_dir(ckpt, "noise-free-reference", 0.0),
            cell_checkpoint_dir(ckpt, METHODS[0].label, 0.5),
        ]
        before = {
            path: path.stat().st_mtime_ns
            for cell in finished
            for path in sorted(cell.glob("*"))
        }
        assert before, "interrupted run left no snapshots for finished cells"

        resumed = tiny_grid(grid_data, workers=2, checkpoint_dir=ckpt)
        assert resumed == reference
        after = {path: path.stat().st_mtime_ns for path in before}
        assert after == before  # finished cells were not re-trained

    def test_cell_crash_retried_to_serial_result(self, grid_data, tmp_path):
        """A worker crash inside one cell is retried and the grid still
        matches the serial run."""
        reference = tiny_grid(grid_data, workers=1)
        marker = tmp_path / "crashed-once"

        def crashing_builder():
            in_worker = os.environ.get("_REPRO_GRID_PARENT") != str(os.getpid())
            if in_worker and not marker.exists():
                marker.write_text("")
                os._exit(23)  # simulate an OOM-killed worker
            return builder()

        os.environ["_REPRO_GRID_PARENT"] = str(os.getpid())
        try:
            recorder = MetricsRecorder()
            result = tiny_grid(
                grid_data,
                workers=2,
                model_builder=crashing_builder,
                telemetry=recorder,
            )
        finally:
            del os.environ["_REPRO_GRID_PARENT"]
        assert result == reference
        assert marker.exists()
        assert recorder.counters["runtime_pool_restarts"] >= 1
