"""Worker telemetry ship-back tests: per-job instruments, deterministic
merge order, and worker-count-invariant merged telemetry for the
scheduler and the full training grid."""

import json

import numpy as np
import pytest

from repro.runtime import (
    ShippedTelemetry,
    instrument,
    job_recorder,
    job_tracer,
    make_cells,
    make_jobs,
    merge_shipped,
    run_cells,
    run_jobs,
)
from repro.telemetry import MetricsRecorder, Tracer


def record_square(job):
    recorder, tracer = job_recorder(), job_tracer()
    with tracer.span("lot", level="lot"):
        with tracer.span("clip"):
            value = float(job.payload**2)
    recorder.record("square", value)
    recorder.increment("jobs_seen")
    return value


class TestInstrument:
    def test_wraps_result_with_states(self):
        wrapped = instrument(record_square)
        cell = make_cells([3], keys=["a"], rng=np.random.default_rng(0))[0]
        shipped = wrapped(cell)
        assert isinstance(shipped, ShippedTelemetry)
        assert shipped.result == 9.0
        assert shipped.recorder_state["counters"] == {"jobs_seen": 1}
        assert [s["name"] for s in shipped.tracer_state["spans"]] == ["lot", "clip"]

    def test_instruments_torn_down_after_call(self):
        wrapped = instrument(record_square)
        cell = make_cells([2], keys=["a"], rng=np.random.default_rng(0))[0]
        wrapped(cell)
        assert job_recorder() is None and job_tracer() is None

    def test_instruments_torn_down_on_error(self):
        def boom(job):
            assert job_recorder() is not None
            raise RuntimeError("job failed")

        with pytest.raises(RuntimeError, match="job failed"):
            instrument(boom)(object())
        assert job_recorder() is None and job_tracer() is None

    def test_uninstrumented_context_returns_none(self):
        assert job_recorder() is None and job_tracer() is None

    def test_granularity_gates_worker_spans(self):
        def phase_gated(job):
            with job_tracer().span("clip") as span:
                assert span is None
            return None

        wrapped = instrument(phase_gated, granularity="lot")
        shipped = wrapped(object())
        assert shipped.tracer_state["spans"] == []


class TestMergeShipped:
    def test_merges_in_index_order_with_tracks(self):
        wrapped = instrument(record_square)
        cells = make_cells([1, 2, 3], keys=["a", "b", "c"], rng=np.random.default_rng(0))
        shipped = [wrapped(c) for c in cells]
        recorder, tracer = MetricsRecorder(), Tracer()
        results = merge_shipped(
            shipped, keys=["a", "b", "c"], recorder=recorder, tracer=tracer
        )
        assert results == [1.0, 4.0, 9.0]
        assert recorder.values("square") == [1.0, 4.0, 9.0]
        assert recorder.counters["jobs_seen"] == 3
        assert [s.track for s in tracer.spans] == ["a", "a", "b", "b", "c", "c"]
        # parent links re-based per merge: each track's clip points at its lot
        clips = [s for s in tracer.spans if s.name == "clip"]
        for clip in clips:
            assert tracer.spans[clip.parent].name == "lot"
            assert tracer.spans[clip.parent].track == clip.track

    def test_non_shipped_entries_pass_through(self):
        results = merge_shipped([1.5, None], recorder=MetricsRecorder())
        assert results == [1.5, None]


class TestShipbackLoss:
    def test_instrument_marks_wrapper(self):
        wrapped = instrument(record_square)
        assert wrapped.ships_telemetry is True
        assert wrapped.__wrapped__ is record_square

    def test_failed_attempt_counts_lost_shipback(self, tmp_path):
        """A charged attempt of an instrumented job loses its worker-side
        telemetry with the exception; the pool counts the loss instead of
        silently dropping it."""
        marker = tmp_path / "failed-once"

        def flaky(job):
            job_recorder().increment("jobs_seen")
            if job.payload == 2 and not marker.exists():
                marker.write_text("")
                raise OSError("transient")
            return float(job.payload)

        recorder = MetricsRecorder()
        shipped = run_jobs(
            instrument(flaky),
            make_jobs([1, 2, 3]),
            workers=2,
            backoff_base=0.001,
            telemetry=recorder,
        )
        results = merge_shipped(shipped, recorder=recorder)
        assert results == [1.0, 2.0, 3.0]
        assert recorder.counters["runtime_retries"] == 1
        assert recorder.counters["runtime_shipback_lost"] == 1
        # The successful retry's telemetry still shipped: 3 jobs seen
        # (the failed attempt's increment died with the exception).
        assert recorder.counters["jobs_seen"] == 3

    def test_uninstrumented_failures_do_not_count(self, tmp_path):
        marker = tmp_path / "failed-once"

        def flaky(job):
            if not marker.exists():
                marker.write_text("")
                raise OSError("transient")
            return float(job.payload)

        recorder = MetricsRecorder()
        run_jobs(
            flaky, make_jobs([5]), workers=2, backoff_base=0.001,
            telemetry=recorder,
        )
        assert recorder.counters["runtime_retries"] == 1
        assert "runtime_shipback_lost" not in recorder.counters


class TestWorkerInvariance:
    @staticmethod
    def _run(workers: int):
        recorder, tracer = MetricsRecorder(), Tracer()
        cells = make_cells(
            list(range(6)),
            keys=[f"cell-{i}" for i in range(6)],
            rng=np.random.default_rng(1),
        )
        results = run_cells(
            record_square,
            cells,
            workers=workers,
            telemetry=recorder,
            tracer=tracer,
            ship_telemetry=True,
        )
        return results, recorder, tracer

    @pytest.mark.parametrize("workers", [2, 4])
    def test_merged_telemetry_matches_serial(self, workers):
        base_results, base_rec, base_tr = self._run(1)
        results, rec, tr = self._run(workers)
        assert results == base_results
        assert json.dumps(rec.deterministic_state(), sort_keys=True) == (
            json.dumps(base_rec.deterministic_state(), sort_keys=True)
        )
        assert [(s.name, s.level, s.track, s.parent) for s in tr.spans] == [
            (s.name, s.level, s.track, s.parent) for s in base_tr.spans
        ]


@pytest.mark.slow
class TestGridShipback:
    """End-to-end: run_grid ships per-cell training telemetry deterministically."""

    @staticmethod
    def _grid(workers: int):
        from repro.data import make_mnist_like, train_test_split
        from repro.experiments.training_grid import MethodSpec, run_grid
        from repro.models import build_logistic_regression

        data = make_mnist_like(160, rng=0, size=8)
        train, test = train_test_split(data, rng=0)
        recorder, tracer = MetricsRecorder(), Tracer()
        result = run_grid(
            [MethodSpec("DP (B=32)", "dp", 32)],
            lambda: build_logistic_regression((1, 8, 8), rng=0),
            train,
            test,
            sigmas=(1.0,),
            iterations=4,
            learning_rate=1.0,
            clip_norm=0.1,
            rng=np.random.default_rng(5),
            workers=workers,
            telemetry=recorder,
            tracer=tracer,
            ship_telemetry=True,
        )
        tracer.close()
        return result, recorder, tracer

    def test_workers_1_2_4_identical(self):
        base, base_rec, base_tr = self._grid(1)
        base_det = json.dumps(base_rec.deterministic_state(), sort_keys=True)
        assert {"DP (B=32)@sigma=1", "noise-free-reference"} <= {
            s.track for s in base_tr.spans
        }
        assert base_rec.counters["iterations"] == 8  # 2 cells x 4 iterations
        for workers in (2, 4):
            result, rec, tracer = self._grid(workers)
            assert result == base
            assert json.dumps(rec.deterministic_state(), sort_keys=True) == base_det
            assert [(s.name, s.track) for s in tracer.spans] == [
                (s.name, s.track) for s in base_tr.spans
            ]
