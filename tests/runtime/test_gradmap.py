"""Tests for the shared-memory parallel per-sample gradient map."""

import numpy as np
import pytest

from repro.core import DpSgdOptimizer, SgdOptimizer, Trainer
from repro.data import make_mnist_like
from repro.models import build_logistic_regression
from repro.privacy.clipping import (
    AdaptiveQuantileClipping,
    AutoSClipping,
    FlatClipping,
    PsacClipping,
)
from repro.runtime import chunk_ranges, parallel_available
from repro.runtime.gradmap import ParallelGradientMap
from repro.telemetry import MetricsRecorder

needs_fork = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def tiny_data():
    return make_mnist_like(120, rng=0, size=8)


def tiny_model():
    return build_logistic_regression((1, 8, 8), rng=0)


def train_history(data, *, workers=None, clipping=None, iterations=4):
    clipping = clipping if clipping is not None else FlatClipping(0.5)
    opt = DpSgdOptimizer(0.5, clipping, 0.8, rng=3)
    trainer = Trainer(
        tiny_model(),
        opt,
        data,
        batch_size=60,
        microbatch_size=16,
        parallel_grad_workers=workers,
        rng=5,
    )
    with trainer:
        history = trainer.train(iterations)
        params = trainer.model.get_params().copy()
    return history, params


@needs_fork
class TestTrainerParity:
    @pytest.mark.parametrize(
        "clipping",
        [
            pytest.param(lambda: FlatClipping(0.5), id="flat"),
            pytest.param(
                lambda: AdaptiveQuantileClipping(0.5, rng=11), id="adaptive"
            ),
            pytest.param(
                lambda: AutoSClipping(0.5), id="auto-s", marks=pytest.mark.slow
            ),
            pytest.param(
                lambda: PsacClipping(0.5), id="psac", marks=pytest.mark.slow
            ),
        ],
    )
    def test_parallel_matches_serial(self, tiny_data, clipping):
        serial_hist, serial_params = train_history(tiny_data, clipping=clipping())
        par_hist, par_params = train_history(
            tiny_data, workers=2, clipping=clipping()
        )
        assert par_hist.losses == serial_hist.losses
        assert np.array_equal(par_params, serial_params)

    def test_adaptive_threshold_trajectory_matches(self, tiny_data):
        serial = AdaptiveQuantileClipping(0.5, rng=11)
        parallel = AdaptiveQuantileClipping(0.5, rng=11)
        train_history(tiny_data, clipping=serial)
        train_history(tiny_data, workers=2, clipping=parallel)
        assert parallel.history == serial.history
        assert parallel.clip_norm == serial.clip_norm


@needs_fork
class TestMapChunks:
    def test_matches_serial_chunk_loop(self, tiny_data):
        model = tiny_model()
        clipping = FlatClipping(0.3)
        params = model.get_params().copy()
        idx = np.arange(48)
        chunks = [idx[a:b] for a, b in chunk_ranges(len(idx), 16)]

        gradmap = ParallelGradientMap(model, tiny_data, workers=2)
        try:
            outs = gradmap.map_chunks(params, chunks, clipping)
        finally:
            gradmap.close()
        assert outs is not None and len(outs) == len(chunks)

        for chunk, (clipped_sum, losses, norms) in zip(chunks, outs):
            model.set_params(params)
            ref_losses, grads = model.loss_and_per_sample_gradients(
                tiny_data.x[chunk], tiny_data.y[chunk]
            )
            ref_clipped, ref_norms = clipping.clip_with_norms(grads)
            assert np.array_equal(clipped_sum, ref_clipped.sum(axis=0))
            assert np.array_equal(losses, ref_losses)
            assert np.array_equal(norms, ref_norms)

    def test_empty_chunks(self, tiny_data):
        gradmap = ParallelGradientMap(tiny_model(), tiny_data, workers=2)
        try:
            assert gradmap.map_chunks(np.zeros(3), [], FlatClipping(1.0)) == []
        finally:
            gradmap.close()

    def test_failure_disables_after_budget(self, tiny_data):
        """An unpicklable clipping object trips the fallback, then disables."""

        class Unpicklable(FlatClipping):
            def __init__(self):
                super().__init__(1.0)
                self.trap = lambda: None

        recorder = MetricsRecorder()
        gradmap = ParallelGradientMap(
            tiny_model(), tiny_data, workers=2,
            telemetry=recorder, max_pool_failures=2,
        )
        try:
            params = tiny_model().get_params()
            chunks = [np.arange(4)]
            assert gradmap.map_chunks(params, chunks, Unpicklable()) is None
            assert gradmap.available
            assert gradmap.map_chunks(params, chunks, Unpicklable()) is None
            assert not gradmap.available  # budget exhausted -> disabled
            assert gradmap.map_chunks(params, chunks, FlatClipping(1.0)) is None
            assert recorder.counters["gradmap_fallbacks"] == 2
        finally:
            gradmap.close()

    def test_close_is_idempotent_and_disables(self, tiny_data):
        gradmap = ParallelGradientMap(tiny_model(), tiny_data, workers=2)
        gradmap.close()
        gradmap.close()
        assert not gradmap.available
        assert (
            gradmap.map_chunks(np.zeros(3), [np.arange(2)], FlatClipping(1.0))
            is None
        )


class TestValidation:
    def test_rejects_running_stats_model(self, tiny_data):
        class FakeBatchNorm:
            running_mean = None
            running_var = None

        class FakeModel:
            layers = [FakeBatchNorm()]

        with pytest.raises(ValueError, match="running statistics"):
            ParallelGradientMap(FakeModel(), tiny_data, workers=2)

    def test_single_worker_map_is_disabled(self, tiny_data):
        gradmap = ParallelGradientMap(tiny_model(), tiny_data, workers=1)
        assert not gradmap.available

    def test_trainer_rejects_bad_worker_count(self, tiny_data):
        with pytest.raises(ValueError, match="parallel_grad_workers"):
            Trainer(
                tiny_model(),
                DpSgdOptimizer(0.5, 0.5, 1.0, rng=0),
                tiny_data,
                batch_size=60,
                microbatch_size=16,
                parallel_grad_workers=0,
            )

    def test_trainer_requires_microbatch_size(self, tiny_data):
        with pytest.raises(ValueError, match="microbatch_size"):
            Trainer(
                tiny_model(),
                DpSgdOptimizer(0.5, 0.5, 1.0, rng=0),
                tiny_data,
                batch_size=60,
                parallel_grad_workers=2,
            )

    def test_trainer_rejects_augment(self, tiny_data):
        with pytest.raises(ValueError, match="augment"):
            Trainer(
                tiny_model(),
                DpSgdOptimizer(0.5, 0.5, 1.0, rng=0),
                tiny_data,
                batch_size=60,
                microbatch_size=16,
                parallel_grad_workers=2,
                augment=lambda x, rng: x,
            )

    def test_trainer_requires_clipping_optimizer(self, tiny_data):
        class AccumulatingNoClip(SgdOptimizer):
            # Supports accumulation but exposes no clipping strategy.
            def clipped_sum(self, grads):
                return grads.sum(axis=0)

        with pytest.raises(ValueError, match="clipping"):
            Trainer(
                tiny_model(),
                AccumulatingNoClip(0.5),
                tiny_data,
                batch_size=60,
                microbatch_size=16,
                parallel_grad_workers=2,
            )
