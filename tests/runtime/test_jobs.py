"""Tests for job specs and deterministic sharding helpers."""

import numpy as np
import pytest

from repro.runtime import Job, assign_job_rngs, chunk_ranges, make_jobs
from repro.utils.rng import spawn_rngs


class TestChunkRanges:
    def test_covers_everything_in_order(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_exact_division(self):
        assert chunk_ranges(6, 3) == [(0, 3), (3, 6)]

    def test_single_chunk(self):
        assert chunk_ranges(4, 100) == [(0, 4)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 4)
        with pytest.raises(ValueError):
            chunk_ranges(4, 0)

    def test_independent_of_anything_but_inputs(self):
        assert chunk_ranges(100, 7) == chunk_ranges(100, 7)


class TestMakeJobs:
    def test_default_keys(self):
        jobs = make_jobs(["a", "b"])
        assert [j.key for j in jobs] == ["job-0", "job-1"]
        assert [j.payload for j in jobs] == ["a", "b"]
        assert all(j.rng is None for j in jobs)

    def test_explicit_keys(self):
        jobs = make_jobs([1, 2], keys=["x", "y"])
        assert [j.key for j in jobs] == ["x", "y"]

    def test_key_count_mismatch(self):
        with pytest.raises(ValueError, match="keys"):
            make_jobs([1, 2], keys=["only-one"])

    def test_seeding_matches_serial_spawn(self):
        """Job rngs are exactly the spawn_rngs streams a serial loop uses."""
        jobs = make_jobs([0, 1, 2], rng=np.random.default_rng(7))
        reference = spawn_rngs(np.random.default_rng(7), 3)
        for job, ref in zip(jobs, reference):
            assert job.rng.normal(size=4).tolist() == ref.normal(size=4).tolist()

    def test_jobs_are_plain_dataclasses(self):
        job = Job("k", payload=123)
        assert job.key == "k" and job.payload == 123 and job.rng is None


class TestAssignJobRngs:
    def test_index_based_independence(self):
        rngs = assign_job_rngs(0, 4)
        draws = [r.normal() for r in rngs]
        assert len(set(draws)) == 4  # distinct streams

    def test_deterministic(self):
        a = [r.normal() for r in assign_job_rngs(3, 3)]
        b = [r.normal() for r in assign_job_rngs(3, 3)]
        assert a == b
