"""Tests for the fault-tolerant process-pool job runner."""

import os

import numpy as np
import pytest

from repro.runtime import (
    JobFailure,
    JobOutcome,
    make_jobs,
    parallel_available,
    resolve_workers,
    run_jobs,
)
from repro.telemetry import MetricsRecorder

needs_fork = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)


def double(job):
    return job.payload * 2


def seeded_draw(job):
    return float(job.rng.normal()) + job.payload


class TestResolveWorkers:
    def test_auto(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers("auto") >= 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSerialPath:
    def test_results_in_job_order(self):
        assert run_jobs(double, make_jobs([3, 1, 2]), workers=1) == [6, 2, 4]

    def test_bare_payloads_are_wrapped(self):
        assert run_jobs(double, [5, 6], workers=1) == [10, 12]

    def test_empty(self):
        assert run_jobs(double, [], workers=4) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            run_jobs(double, [1], max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            run_jobs(double, [1], timeout=0)

    def test_deterministic_error_raises_job_failure(self):
        def bad(job):
            raise RuntimeError("boom")

        with pytest.raises(JobFailure, match="job-0"):
            run_jobs(bad, [1], workers=1)


@needs_fork
class TestParallelPath:
    def test_parallel_equals_serial(self):
        jobs_a = make_jobs([10, 20, 30, 40, 50], rng=0)
        jobs_b = make_jobs([10, 20, 30, 40, 50], rng=0)
        assert run_jobs(seeded_draw, jobs_a, workers=1) == run_jobs(
            seeded_draw, jobs_b, workers=2
        )

    def test_closure_state_crosses_fork(self):
        big = np.arange(1000)

        def use_closure(job):
            return float(big[job.payload])

        assert run_jobs(use_closure, [1, 999], workers=2) == [1.0, 999.0]

    def test_outcomes_and_telemetry(self):
        recorder = MetricsRecorder()
        outcomes = []
        run_jobs(double, make_jobs([1, 2, 3]), workers=2, telemetry=recorder,
                 outcomes=outcomes)
        assert recorder.counters["runtime_jobs_completed"] == 3
        assert len(recorder.values("runtime_job_seconds")) == 3
        assert sorted(o.index for o in outcomes) == [0, 1, 2]
        assert all(isinstance(o, JobOutcome) and o.attempts == 1 for o in outcomes)

    def test_unpicklable_result_falls_back_to_serial(self):
        def locally_scoped(job):
            return lambda: job.payload  # lambdas cannot cross the boundary

        recorder = MetricsRecorder()
        [result] = run_jobs(
            locally_scoped, [7], workers=2, backoff_base=0.001, telemetry=recorder
        )
        assert result() == 7
        assert recorder.counters["runtime_serial_fallbacks"] == 1

    def test_retry_then_success(self, tmp_path):
        marker = tmp_path / "failed-once"

        def flaky(job):
            if job.payload == 2 and not marker.exists():
                marker.write_text("")
                raise OSError("transient")
            return job.payload

        recorder = MetricsRecorder()
        outcomes = []
        result = run_jobs(
            flaky,
            make_jobs([1, 2, 3]),
            workers=2,
            backoff_base=0.001,
            telemetry=recorder,
            outcomes=outcomes,
        )
        assert result == [1, 2, 3]
        assert recorder.counters["runtime_retries"] == 1
        retried = [o for o in outcomes if o.index == 1]
        assert retried and retried[0].attempts == 2


@needs_fork
class TestCrashRecovery:
    def test_worker_crash_retries_and_matches_serial(self, tmp_path):
        """A worker killed mid-job is retried; the result matches serial."""
        marker = tmp_path / "crashed-once"

        def crashy(job):
            value = float(job.rng.normal()) + job.payload
            in_worker = os.environ.get("_REPRO_POOL_PARENT") != str(os.getpid())
            if job.payload == 20 and in_worker and not marker.exists():
                marker.write_text("")
                os._exit(17)  # hard kill: no exception, no cleanup
            return value

        os.environ["_REPRO_POOL_PARENT"] = str(os.getpid())
        try:
            serial = run_jobs(crashy, make_jobs([10, 20, 30, 40], rng=1), workers=1)
            recorder = MetricsRecorder()
            parallel = run_jobs(
                crashy,
                make_jobs([10, 20, 30, 40], rng=1),
                workers=2,
                backoff_base=0.001,
                telemetry=recorder,
            )
        finally:
            del os.environ["_REPRO_POOL_PARENT"]
        assert marker.exists()  # the crash really happened in a worker
        assert parallel == serial
        assert recorder.counters["runtime_pool_restarts"] >= 1
        assert recorder.counters["runtime_jobs_completed"] == 4

    def test_always_crashing_job_falls_back_to_serial(self, tmp_path):
        """A job that kills every worker ends up on the in-process fallback."""
        def crashy(job):
            # The env marker holds the parent pid: forked workers see a
            # different getpid() and die; the in-process fallback survives.
            if job.payload == 2 and os.environ.get("_REPRO_IN_PARENT") != str(os.getpid()):
                os._exit(9)
            return job.payload * 3

        os.environ["_REPRO_IN_PARENT"] = str(os.getpid())
        try:
            recorder = MetricsRecorder()
            outcomes = []
            result = run_jobs(
                crashy,
                make_jobs([1, 2, 3]),
                workers=2,
                max_attempts=2,
                backoff_base=0.001,
                telemetry=recorder,
                outcomes=outcomes,
            )
        finally:
            del os.environ["_REPRO_IN_PARENT"]
        assert result == [3, 6, 9]
        # The poison job ends on the in-process fallback; innocent jobs
        # interrupted by its pool crashes may legitimately land there too.
        assert recorder.counters["runtime_serial_fallbacks"] >= 1
        [poison] = [o for o in outcomes if o.index == 1]
        assert poison.fallback

    def test_hung_job_times_out_and_recovers(self):
        def sleepy(job):
            if job.payload == "hang":
                import time

                if os.environ.get("_REPRO_IN_PARENT2") != str(os.getpid()):
                    time.sleep(60)
            return job.payload

        os.environ["_REPRO_IN_PARENT2"] = str(os.getpid())
        try:
            result = run_jobs(
                sleepy,
                make_jobs(["a", "hang", "b"]),
                workers=2,
                timeout=0.5,
                max_attempts=2,
                backoff_base=0.001,
            )
        finally:
            del os.environ["_REPRO_IN_PARENT2"]
        assert result == ["a", "hang", "b"]
