"""SparseBatchGrads: losslessness of the compacted representation."""

import numpy as np
import pytest

from repro.nn.embedding import Embedding
from repro.sparse import SparseBatchGrads

pytestmark = pytest.mark.sparse


def _backward_sparse(vocab, dim, tokens, gout, padding_idx=None, seed=0):
    emb = Embedding(vocab, dim, rng=np.random.default_rng(seed), padding_idx=padding_idx)
    emb.forward(tokens, train=True)
    return emb, emb.backward_sparse(gout)


class TestSparseBatchGrads:
    def test_scatter_back_matches_dense_per_sample(self):
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 12, size=(5, 7))
        gout = rng.normal(size=(5, 7, 3))
        _, sparse = _backward_sparse(12, 3, tokens, gout)
        dense = np.zeros((5, 12, 3))
        for i in range(5):
            np.add.at(dense[i], tokens[i], gout[i])
        np.testing.assert_allclose(sparse.to_dense(12), dense, atol=1e-12)

    def test_norms_match_dense(self):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 6, size=(4, 20))  # heavy collisions
        gout = rng.normal(size=(4, 20, 5))
        _, sparse = _backward_sparse(6, 5, tokens, gout)
        dense = sparse.to_dense(6)
        np.testing.assert_allclose(
            sparse.norm_sq(), np.einsum("bvd,bvd->b", dense, dense), rtol=1e-12
        )

    def test_clipped_row_sum_matches_dense(self):
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 10, size=(6, 8))
        gout = rng.normal(size=(6, 8, 4))
        factors = rng.uniform(0.1, 1.0, size=6)
        _, sparse = _backward_sparse(10, 4, tokens, gout)
        rows, row_sum = sparse.clipped_row_sum(factors)
        dense_sum = np.einsum("b,bvd->vd", factors, sparse.to_dense(10))
        np.testing.assert_allclose(row_sum, dense_sum[rows], atol=1e-12)
        # Untouched rows really are untouched.
        untouched = np.setdiff1d(np.arange(10), rows)
        np.testing.assert_array_equal(dense_sum[untouched], 0.0)

    def test_padding_rows_excluded(self):
        rng = np.random.default_rng(3)
        tokens = rng.integers(1, 8, size=(3, 6))
        tokens[:, -2:] = 0  # pad tail
        gout = rng.normal(size=(3, 6, 2))
        _, sparse = _backward_sparse(8, 2, tokens, gout, padding_idx=0)
        assert 0 not in sparse.rows
        # Padded positions contribute no gradient mass anywhere.
        emb2 = Embedding(8, 2, rng=np.random.default_rng(0), padding_idx=0)
        emb2.forward(tokens, train=True)
        _, grads = emb2.backward(gout)
        dense = grads["weight"]
        np.testing.assert_array_equal(dense[0], 0.0)

    def test_all_pad_sample_has_zero_norm(self):
        tokens = np.array([[0, 0, 0], [1, 2, 1]])
        gout = np.ones((2, 3, 2))
        _, sparse = _backward_sparse(4, 2, tokens, gout, padding_idx=0)
        norms = sparse.norm_sq()
        assert norms[0] == 0.0 and norms[1] > 0.0

    def test_empty_lot(self):
        sparse = SparseBatchGrads(
            batch_size=0,
            dim=3,
            sample_ids=np.zeros(0, dtype=np.int64),
            rows=np.zeros(0, dtype=np.int64),
            vals=np.zeros((0, 3)),
        )
        assert sparse.nnz == 0
        assert sparse.norm_sq().shape == (0,)
        rows, row_sum = sparse.clipped_row_sum(np.zeros(0))
        assert rows.size == 0 and row_sum.shape == (0, 3)

    def test_triples_sorted_and_compacted(self):
        tokens = np.array([[3, 1, 3, 1, 3]])
        gout = np.ones((1, 5, 2))
        _, sparse = _backward_sparse(5, 2, tokens, gout)
        np.testing.assert_array_equal(sparse.rows, [1, 3])
        np.testing.assert_array_equal(sparse.vals, [[2.0, 2.0], [3.0, 3.0]])
