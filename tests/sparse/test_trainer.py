"""SparseTrainer end-to-end: equivalence, accounting, validation, barriers."""

import numpy as np
import pytest

from repro.core.dpsgd import DpSgdOptimizer
from repro.core.geodp import GeoDpSgdOptimizer
from repro.core.geodp_adam import GeoDpAdamOptimizer
from repro.core.trainer import Trainer
from repro.data import make_click_log, train_test_split
from repro.models.text import build_text_classifier
from repro.privacy.accountant import RdpAccountant
from repro.privacy.clipping import AdaptiveQuantileClipping
from repro.privacy.ledger import ReleaseLedger, verify_ledger
from repro.sparse import SparseTrainer, find_embedding

pytestmark = pytest.mark.sparse

VOCAB = 500
BATCH = 15


@pytest.fixture(scope="module")
def click_data():
    data = make_click_log(
        90,
        rng=np.random.default_rng(1),
        vocab_size=VOCAB,
        seq_length=8,
        touch_rate=0.1,
        padding_idx=0,
    )
    return train_test_split(data, rng=np.random.default_rng(2))


def _model():
    return build_text_classifier(
        VOCAB, 2, embedding_dim=4, padding_idx=0, rng=np.random.default_rng(0)
    )


def _optimizer(scheme="dp", sigma=0.7, **extra):
    kwargs = dict(
        learning_rate=0.5,
        clipping=1.0,
        noise_multiplier=sigma,
        rng=np.random.default_rng(3),
        **extra,
    )
    if scheme == "geodp":
        return GeoDpSgdOptimizer(beta=0.02, **kwargs)
    if scheme == "geodp_adam":
        return GeoDpAdamOptimizer(beta=0.02, **kwargs)
    return DpSgdOptimizer(**kwargs)


def _sparse_trainer(data, opt, **kwargs):
    kwargs.setdefault("rng", np.random.default_rng(4))
    kwargs.setdefault("noise_seed", 9)
    return SparseTrainer(_model(), opt, data[0], batch_size=BATCH, **kwargs)


@pytest.mark.parametrize("scheme", ["dp", "geodp", "geodp_adam"])
class TestEquivalence:
    def test_lazy_replay_matches_eager(self, click_data, scheme):
        """Deferred noise, once flushed, reproduces the eager parameters."""
        params = {}
        for lazy in (False, True):
            trainer = _sparse_trainer(
                click_data, _optimizer(scheme), lazy=lazy, noise_mode="replay"
            )
            trainer.train(6)
            trainer.finalize()
            params[lazy] = trainer.model.get_params()
        assert np.max(np.abs(params[False] - params[True])) <= 1e-8

    def test_ledger_replays_to_dense_epsilon(self, click_data, scheme):
        """Same-config sparse and dense runs spend identical privacy."""
        results = {}
        for sparse in (False, True):
            ledger = ReleaseLedger()
            opt = _optimizer(
                scheme,
                ledger=ledger,
                accountant=RdpAccountant(),
                sample_rate=BATCH / len(click_data[0]),
            )
            if sparse:
                trainer = _sparse_trainer(click_data, opt, noise_mode="aggregate")
                trainer.train(5)
                trainer.finalize()
            else:
                trainer = Trainer(
                    _model(), opt, click_data[0], batch_size=BATCH,
                    rng=np.random.default_rng(4),
                )
                trainer.train(5)
            verdict = verify_ledger(ledger, opt.accountant)
            assert verdict.ok
            results[sparse] = (
                verdict.replayed_epsilon,
                [(e.mechanism, e.sigma, e.sensitivity) for e in ledger.entries],
            )
        assert abs(results[False][0] - results[True][0]) <= 1e-9
        assert results[False][1] == results[True][1]


class TestTraining:
    def test_learns_at_zero_noise(self, click_data):
        trainer = _sparse_trainer(
            click_data, _optimizer(sigma=0.0), test_data=click_data[1],
            noise_mode="aggregate",
        )
        history = trainer.train(120)
        assert history.iterations == 120
        assert trainer.evaluate() >= 0.75

    def test_untouched_rows_move_only_by_noise(self, click_data):
        """Rows outside the drawable support change only via cover noise."""
        trainer = _sparse_trainer(click_data, _optimizer(), noise_mode="aggregate")
        before = trainer.embedding.weight.copy()
        trainer.train(5)
        # Support is the top 10% of the table; deep-tail rows are never drawn.
        tail = slice(VOCAB // 2, VOCAB)
        np.testing.assert_array_equal(trainer.embedding.weight[tail], before[tail])
        trainer.flush()
        moved = np.abs(trainer.embedding.weight[tail] - before[tail])
        assert np.all(moved > 0)  # cover noise reached every tail coordinate
        scale = trainer._cover_scale() * np.sqrt(5)
        assert np.max(moved) < 8 * scale  # ...at the deferred-noise scale

    def test_history_and_eval_every(self, click_data):
        trainer = _sparse_trainer(
            click_data, _optimizer(), test_data=click_data[1],
            noise_mode="aggregate",
        )
        history = trainer.train(4, eval_every=2)
        assert len(history.losses) == 4
        assert [it for it, _ in history.test_accuracy] == [2, 4]

    def test_state_dict_round_trip(self, click_data):
        trainer = _sparse_trainer(click_data, _optimizer(), noise_mode="replay")
        trainer.train(3)
        snapshot = trainer.state_dict()
        resumed = _sparse_trainer(click_data, _optimizer(), noise_mode="replay")
        resumed.load_state_dict(snapshot)
        trainer.train(3)
        resumed.train(3)
        trainer.finalize()
        resumed.finalize()
        np.testing.assert_allclose(
            trainer.model.get_params(), resumed.model.get_params(), atol=1e-12
        )


class TestValidation:
    def test_rejects_optimizer_without_step_sparse(self, click_data):
        from repro.core.sgd import SgdOptimizer

        with pytest.raises(ValueError, match="step_sparse"):
            SparseTrainer(_model(), SgdOptimizer(0.1), click_data[0], batch_size=BATCH)

    def test_rejects_adaptive_sensitivity(self, click_data):
        opt = DpSgdOptimizer(
            0.5, AdaptiveQuantileClipping(1.0), 0.7, rng=np.random.default_rng(3)
        )
        with pytest.raises(ValueError, match="constant"):
            SparseTrainer(_model(), opt, click_data[0], batch_size=BATCH)

    def test_rejects_model_without_embedding(self, click_data):
        from repro.models import build_logistic_regression

        model = build_logistic_regression((8,), 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="exactly one Embedding"):
            SparseTrainer(model, _optimizer(), click_data[0], batch_size=BATCH)

    def test_rejects_bad_batch_size(self, click_data):
        with pytest.raises(ValueError, match="batch_size"):
            SparseTrainer(_model(), _optimizer(), click_data[0], batch_size=0)

    def test_core_trainer_rejects_sparse_mode(self, click_data):
        opt = _optimizer(grad_mode="sparse")
        with pytest.raises(ValueError, match="SparseTrainer"):
            Trainer(_model(), opt, click_data[0], batch_size=BATCH)

    def test_rejects_out_of_vocab_tokens(self, click_data):
        trainer = _sparse_trainer(click_data, _optimizer())
        with pytest.raises(ValueError, match="token ids"):
            trainer._step(np.full((2, 3), VOCAB, dtype=np.float64), np.zeros(2))

    def test_find_embedding(self):
        assert find_embedding(_model()) == 0
