"""Counter-based row noise streams and the lazy deferral bookkeeping."""

import numpy as np
import pytest

from repro.sparse import LazyRowNoise, row_step_noise

pytestmark = pytest.mark.sparse


class TestRowStepNoise:
    def test_pure_function_of_key(self):
        rows = np.array([0, 5, 5, 999])
        steps = np.array([1, 1, 2, 7])
        a = row_step_noise(42, rows, steps, 8)
        b = row_step_noise(42, rows, steps, 8)
        np.testing.assert_array_equal(a, b)
        # Same (row, step) key -> same value regardless of call shape.
        single = row_step_noise(42, np.array([5]), np.array([2]), 8)
        np.testing.assert_array_equal(a[2], single[0])

    def test_distinct_keys_decorrelate(self):
        base = row_step_noise(42, np.array([5]), np.array([1]), 64)
        other_row = row_step_noise(42, np.array([6]), np.array([1]), 64)
        other_step = row_step_noise(42, np.array([5]), np.array([2]), 64)
        other_seed = row_step_noise(43, np.array([5]), np.array([1]), 64)
        for other in (other_row, other_step, other_seed):
            assert np.max(np.abs(base - other)) > 1e-6

    @pytest.mark.slow
    def test_moments_are_standard_normal(self):
        rows = np.repeat(np.arange(200), 50)
        steps = np.tile(np.arange(1, 51), 200)
        draws = row_step_noise(0, rows, steps, 32).ravel()
        assert abs(draws.mean()) < 0.01
        assert abs(draws.std() - 1.0) < 0.01
        assert np.all(np.isfinite(draws))

    def test_no_stream_state_consumed(self):
        state = np.random.get_state()[1].copy()
        row_step_noise(7, np.arange(100), np.ones(100, dtype=np.int64), 16)
        np.testing.assert_array_equal(np.random.get_state()[1], state)


class TestLazyRowNoise:
    def test_replay_matches_eager_accumulation(self):
        """Deferring k steps then materializing == applying each step."""
        lazy = LazyRowNoise(10, 4, seed=1, mode="replay")
        eager = LazyRowNoise(10, 4, seed=1, mode="replay")
        rows = np.array([2, 7])
        eager_total = np.zeros((2, 4))
        for _ in range(5):
            lazy.advance()
            eager.advance()
            eager_total += eager.materialize(rows)
        np.testing.assert_array_equal(lazy.materialize(rows), eager_total)

    def test_aggregate_scales_by_sqrt_pending(self):
        lazy = LazyRowNoise(10, 4, seed=1, mode="aggregate")
        for _ in range(9):
            lazy.advance()
        draws = lazy.materialize(np.array([3]))
        unit = row_step_noise(1, np.array([3]), np.array([9]), 4)
        np.testing.assert_allclose(draws, 3.0 * unit)

    def test_partial_materialize_bookkeeping(self):
        """Materializing mid-way leaves exactly the remainder pending."""
        split = LazyRowNoise(10, 4, seed=1, mode="replay")
        whole = LazyRowNoise(10, 4, seed=1, mode="replay")
        rows = np.array([0, 9])
        for _ in range(3):
            split.advance()
            whole.advance()
        first = split.materialize(rows)
        for _ in range(2):
            split.advance()
            whole.advance()
        second = split.materialize(rows)
        # Same draws either way; only the fp summation grouping differs.
        np.testing.assert_allclose(
            first + second, whole.materialize(rows), atol=1e-12
        )

    def test_mark_discharges_without_drawing(self):
        lazy = LazyRowNoise(10, 4, seed=1)
        lazy.advance()
        lazy.mark(np.array([4]))
        assert lazy.pending(np.array([4]))[0] == 0
        np.testing.assert_array_equal(lazy.materialize(np.array([4])), 0.0)

    def test_flush_covers_all_pending_rows(self):
        lazy = LazyRowNoise(6, 2, seed=1)
        lazy.advance()
        lazy.mark(np.array([1, 3]))
        rows, noise = lazy.flush()
        np.testing.assert_array_equal(rows, [0, 2, 4, 5])
        assert noise.shape == (4, 2)
        assert np.all(lazy.pending() == 0)

    def test_state_dict_round_trip(self):
        lazy = LazyRowNoise(8, 2, seed=5, mode="aggregate")
        lazy.advance()
        lazy.mark(np.array([0, 1]))
        clone = LazyRowNoise(8, 2, seed=5, mode="aggregate")
        clone.load_state_dict(lazy.state_dict())
        np.testing.assert_array_equal(clone.pending(), lazy.pending())
        with pytest.raises(ValueError, match="different seed or mode"):
            LazyRowNoise(8, 2, seed=6, mode="aggregate").load_state_dict(
                lazy.state_dict()
            )
        with pytest.raises(ValueError, match="different table size"):
            LazyRowNoise(9, 2, seed=5, mode="aggregate").load_state_dict(
                lazy.state_dict()
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LazyRowNoise(4, 2, seed=0, mode="bogus")
        with pytest.raises(ValueError, match=">= 1"):
            LazyRowNoise(0, 2, seed=0)
